(* The static analyzer: diagnostic plumbing, per-code unit cases on a
   hand-built RIG, qcheck soundness of the emptiness codes against the
   naive reference evaluator, and schema checks. *)

module D = Analysis.Diagnostic

let parse = Ralg.Expr_parser.parse_exn

(* A -> B -> C, D isolated: (A, C) is a walk but not an edge, D is
   unreachable from everything. *)
let rig =
  Ralg.Rig.create
    ~names:[ "A"; "B"; "C"; "D" ]
    ~edges:[ ("A", "B"); ("B", "C") ]

let codes ds = List.map (fun d -> d.D.code) ds
let has code ds = List.mem code (codes ds)

let check ?cost_threshold text =
  Analysis.Expr_check.check ?cost_threshold ~text rig (parse text)

(* --- diagnostic plumbing ------------------------------------------- *)

let span_of_word_whole_words_only () =
  let text = "Author > Authors" in
  (match D.span_of_word ~text "Authors" with
  | Some { D.start; stop } ->
      Alcotest.(check (pair int int)) "whole word, not the prefix" (9, 16)
        (start, stop)
  | None -> Alcotest.fail "Authors not found");
  Alcotest.(check bool) "absent word has no span" true
    (D.span_of_word ~text "Name" = None)

let sort_ranks_errors_first () =
  let mk sev code = D.make ~code ~severity:sev "m" in
  let sorted = D.sort [ mk D.Hint "OQF003"; mk D.Error "OQF002"; mk D.Warning "OQF005" ] in
  Alcotest.(check (list string)) "severity order"
    [ "OQF002"; "OQF005"; "OQF003" ]
    (codes sorted);
  Alcotest.(check bool) "has_errors" true (D.has_errors sorted);
  let e, w, h = D.count sorted in
  Alcotest.(check (list int)) "counts" [ 1; 1; 1 ] [ e; w; h ]

let json_field_shape () =
  let d =
    D.make ~span:{ D.start = 3; stop = 7 } ~subject:"r" ~detail:"why"
      ~code:"OQF001" ~severity:D.Error "boom"
  in
  Alcotest.(check string) "object rendering"
    {|{"code":"OQF001","severity":"error","subject":"r","message":"boom","detail":"why","span":{"start":3,"stop":7}}|}
    (D.to_json d);
  let bare = D.make ~code:"OQF005" ~severity:D.Warning "m" in
  Alcotest.(check string) "optional fields omitted"
    {|{"code":"OQF005","severity":"warning","message":"m"}|}
    (D.to_json bare);
  Alcotest.(check string) "empty list" "[]" (D.list_to_json [])

let registry_covers_every_emitted_code () =
  let registered = List.map (fun (c, _, _) -> c) D.registry in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " registered") true (List.mem c registered))
    [
      "OQF001"; "OQF002"; "OQF003"; "OQF004"; "OQF005"; "OQF006"; "OQF101";
      "OQF102"; "OQF103"; "OQF201"; "OQF202"; "OQF203";
    ]

(* --- expression codes ---------------------------------------------- *)

let oqf001_trivially_empty () =
  let ds = check "A >d C" in
  Alcotest.(check bool) "OQF001 on non-edge direct inclusion" true
    (has "OQF001" ds);
  Alcotest.(check bool) "it is an error" true (D.has_errors ds);
  let ds = check "A > D" in
  Alcotest.(check bool) "OQF001 on unreachable pair" true (has "OQF001" ds);
  Alcotest.(check (list string)) "clean expression is clean" []
    (codes (check "A > B"))

let oqf002_unknown_name () =
  let ds = check "A > Nope" in
  Alcotest.(check bool) "OQF002 raised" true (has "OQF002" ds);
  Alcotest.(check bool) "unknown name is an error" true (D.has_errors ds)

let oqf003_004_optimizer_hints () =
  let ds = check "A >d B" in
  Alcotest.(check bool) "weaken-direct hint" true (has "OQF003" ds);
  Alcotest.(check bool) "hints alone are not errors" false (D.has_errors ds);
  let ds = check "A > B > C" in
  Alcotest.(check bool) "shorten hint" true (has "OQF004" ds)

let oqf005_dead_union_arm () =
  let ds = check "(A >d C) | (A > B)" in
  Alcotest.(check bool) "dead arm flagged" true (has "OQF005" ds);
  Alcotest.(check bool) "whole expression is not OQF001" false
    (has "OQF001" ds);
  Alcotest.(check bool) "a dead arm is only a warning" false (D.has_errors ds)

let oqf006_cost_threshold () =
  let ds = check ~cost_threshold:1. "A >d B" in
  Alcotest.(check bool) "tiny threshold trips OQF006" true (has "OQF006" ds);
  let ds = check ~cost_threshold:1e12 "A >d B" in
  Alcotest.(check bool) "huge threshold is quiet" false (has "OQF006" ds);
  (* weakened-away direct inclusions don't warn: A > B has no direct op *)
  let ds = check ~cost_threshold:1. "A > B" in
  Alcotest.(check bool) "no direct operator, no OQF006" false (has "OQF006" ds)

let spans_anchor_into_source () =
  List.iter
    (fun d ->
      match d.D.span with
      | None -> ()
      | Some { D.start; stop } ->
          Alcotest.(check bool) "span within text" true
            (0 <= start && start < stop && stop <= String.length "(A >d C) | (A > B)"))
    (check "(A >d C) | (A > B)")

(* --- qcheck soundness (satellite): anything the analyzer calls empty
   really is empty under the naive reference evaluator ---------------- *)

let soundness_flagged_exprs_are_empty =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         "OQF001/OQF005-flagged (sub)expressions evaluate empty (naive eval)"
       ~count:250
       QCheck.(make Gen.(int_bound 100000))
       (fun seed ->
         let seed = 1 + (seed mod 9973) in
         let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
         let e =
           if Stdx.Prng.bool prng then Test_ralg.Gen_instance.random_chain prng rig
           else
             Test_ralg.random_general prng
               (Array.of_list (Ralg.Rig.names rig))
               3
         in
         let ds = Analysis.Expr_check.check rig e in
         (* OQF001: the whole expression must be empty on the instance *)
         if List.exists (fun d -> d.D.code = "OQF001") ds then begin
           let v = Ralg.Naive_eval.eval inst e in
           if not (Pat.Region_set.is_empty v) then
             QCheck.Test.fail_reportf "seed %d: OQF001 but %s is non-empty"
               seed (Ralg.Expr.to_string e)
         end;
         (* every subexpression behind an OQF001/OQF005 is standalone
            trivial; each must be empty on its own *)
         List.iter
           (fun sub ->
             let v = Ralg.Naive_eval.eval inst sub in
             if not (Pat.Region_set.is_empty v) then
               QCheck.Test.fail_reportf
                 "seed %d: flagged subexpression %s of %s is non-empty" seed
                 (Ralg.Expr.to_string sub) (Ralg.Expr.to_string e))
           (Analysis.Expr_check.trivial_subexprs rig e);
         true))

(* --- schema checks -------------------------------------------------- *)

let ghost_view =
  let g =
    Fschema.Grammar.create_exn ~root:"Doc"
      [
        {
          Fschema.Grammar.lhs = "Doc";
          rhs =
            Fschema.Grammar.Seq
              [
                Fschema.Grammar.Lit "{";
                Fschema.Grammar.Star { nonterm = "Item"; separator = None };
                Fschema.Grammar.Lit "}";
              ];
        };
        {
          Fschema.Grammar.lhs = "Item";
          rhs =
            Fschema.Grammar.Seq
              [
                Fschema.Grammar.Lit "(";
                Fschema.Grammar.Nonterm "Name";
                Fschema.Grammar.Lit ")";
              ];
        };
        { Fschema.Grammar.lhs = "Name"; rhs = Fschema.Grammar.Token Word };
        { Fschema.Grammar.lhs = "Ghost"; rhs = Fschema.Grammar.Token Word };
      ]
  in
  Fschema.View.make ~grammar:g ~classes:[]

let oqf101_unreachable_nonterminal () =
  let ds = Analysis.Schema_check.check ghost_view in
  let unreachable =
    List.filter (fun d -> d.D.code = "OQF101") ds
    |> List.filter_map (fun d -> d.D.subject)
  in
  Alcotest.(check (list string)) "only Ghost is unreachable" [ "Ghost" ]
    unreachable

let oqf102_declared_rig_mismatch () =
  let grammar = ghost_view.Fschema.View.grammar in
  let derived = Fschema.Rig_of_grammar.full grammar in
  Alcotest.(check (list string)) "matching declaration is quiet" []
    (Analysis.Schema_check.check ~declared_rig:derived ghost_view
    |> List.filter (fun d -> d.D.code = "OQF102")
    |> codes);
  (* drop an edge and a node from the declaration: both diffs reported,
     as errors *)
  let declared =
    Ralg.Rig.create
      ~names:[ "Doc"; "Item"; "Ghost" ]
      ~edges:[ ("Doc", "Item") ]
  in
  let ds =
    Analysis.Schema_check.check ~declared_rig:declared ghost_view
    |> List.filter (fun d -> d.D.code = "OQF102")
  in
  Alcotest.(check bool) "mismatches found" true (List.length ds >= 2);
  Alcotest.(check bool) "inconsistency is an error" true (D.has_errors ds);
  let details = List.filter_map (fun d -> d.D.detail) ds in
  Alcotest.(check bool) "missing node named" true (List.mem "Name" details);
  Alcotest.(check bool) "missing edge named" true
    (List.mem "Item -> Name" details)

let bibtex_schema_is_error_free () =
  let view =
    match Oqf_catalog.Schemas.find "bibtex" with
    | Some v -> v
    | None -> Alcotest.fail "bibtex schema missing"
  in
  let ds = Analysis.Schema_check.check view in
  Alcotest.(check bool) "built-in schema has no errors" false (D.has_errors ds)

(* --- whole-query analysis ------------------------------------------ *)

let bibtex_env () =
  let view =
    match Oqf_catalog.Schemas.find "bibtex" with
    | Some v -> v
    | None -> Alcotest.fail "bibtex schema missing"
  in
  let index = Fschema.Grammar.indexable view.Fschema.View.grammar in
  let env = Oqf.Compile.env view ~index in
  (env, Ralg.Rig.partial env.Oqf.Compile.full_rig ~keep:index)

let query_check text =
  let env, query_rig = bibtex_env () in
  (Oqf.Check.query ~text env ~query_rig (Odb.Query_parser.parse_exn text))
    .Oqf.Check.diagnostics

let query_impossible_path_is_oqf001 () =
  let ds =
    query_check {|SELECT r FROM References r WHERE r.Title.Last_Name = "C"|}
  in
  Alcotest.(check bool) "provably empty query is an error" true
    (has "OQF001" ds);
  Alcotest.(check bool) "path-level witness attached" true (has "OQF005" ds)

let query_unknown_attribute_warns () =
  let ds = query_check {|SELECT r.Bogus FROM References r|} in
  Alcotest.(check bool) "unknown attribute is OQF002" true (has "OQF002" ds);
  (* the planner treats it as a wildcard, so this must NOT refuse *)
  Alcotest.(check bool) "but only a warning" false (D.has_errors ds)

let query_clean_is_clean () =
  let ds = query_check {|SELECT r.Title FROM References r|} in
  Alcotest.(check (list string)) "no diagnostics" [] (codes ds)

let suites =
  [
    ( "analysis.diagnostic",
      [
        Alcotest.test_case "span_of_word matches whole words" `Quick
          span_of_word_whole_words_only;
        Alcotest.test_case "sort ranks errors first" `Quick
          sort_ranks_errors_first;
        Alcotest.test_case "json shape" `Quick json_field_shape;
        Alcotest.test_case "registry covers every emitted code" `Quick
          registry_covers_every_emitted_code;
      ] );
    ( "analysis.expr",
      [
        Alcotest.test_case "OQF001 trivially empty" `Quick
          oqf001_trivially_empty;
        Alcotest.test_case "OQF002 unknown name" `Quick oqf002_unknown_name;
        Alcotest.test_case "OQF003/OQF004 optimizer hints" `Quick
          oqf003_004_optimizer_hints;
        Alcotest.test_case "OQF005 dead union arm" `Quick oqf005_dead_union_arm;
        Alcotest.test_case "OQF006 cost threshold" `Quick oqf006_cost_threshold;
        Alcotest.test_case "spans stay inside the source" `Quick
          spans_anchor_into_source;
        soundness_flagged_exprs_are_empty;
      ] );
    ( "analysis.schema",
      [
        Alcotest.test_case "OQF101 unreachable non-terminal" `Quick
          oqf101_unreachable_nonterminal;
        Alcotest.test_case "OQF102 declared RIG mismatch" `Quick
          oqf102_declared_rig_mismatch;
        Alcotest.test_case "built-in bibtex schema is error-free" `Quick
          bibtex_schema_is_error_free;
      ] );
    ( "analysis.query",
      [
        Alcotest.test_case "impossible path: OQF001 + OQF005" `Quick
          query_impossible_path_is_oqf001;
        Alcotest.test_case "unknown attribute: OQF002 warning" `Quick
          query_unknown_attribute_warns;
        Alcotest.test_case "clean query has no diagnostics" `Quick
          query_clean_is_clean;
      ] );
  ]
