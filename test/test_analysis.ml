(* The static analyzer: diagnostic plumbing, per-code unit cases on a
   hand-built RIG, qcheck soundness of the emptiness codes against the
   naive reference evaluator, and schema checks. *)

module D = Analysis.Diagnostic

let parse = Ralg.Expr_parser.parse_exn

(* A -> B -> C, D isolated: (A, C) is a walk but not an edge, D is
   unreachable from everything. *)
let rig =
  Ralg.Rig.create
    ~names:[ "A"; "B"; "C"; "D" ]
    ~edges:[ ("A", "B"); ("B", "C") ]

let codes ds = List.map (fun d -> d.D.code) ds
let has code ds = List.mem code (codes ds)

let check ?cost_threshold text =
  Analysis.Expr_check.check ?cost_threshold ~text rig (parse text)

(* --- diagnostic plumbing ------------------------------------------- *)

let span_of_word_whole_words_only () =
  let text = "Author > Authors" in
  (match D.span_of_word ~text "Authors" with
  | Some { D.start; stop } ->
      Alcotest.(check (pair int int)) "whole word, not the prefix" (9, 16)
        (start, stop)
  | None -> Alcotest.fail "Authors not found");
  Alcotest.(check bool) "absent word has no span" true
    (D.span_of_word ~text "Name" = None)

let sort_ranks_errors_first () =
  let mk sev code = D.make ~code ~severity:sev "m" in
  let sorted = D.sort [ mk D.Hint "OQF003"; mk D.Error "OQF002"; mk D.Warning "OQF005" ] in
  Alcotest.(check (list string)) "severity order"
    [ "OQF002"; "OQF005"; "OQF003" ]
    (codes sorted);
  Alcotest.(check bool) "has_errors" true (D.has_errors sorted);
  let e, w, h = D.count sorted in
  Alcotest.(check (list int)) "counts" [ 1; 1; 1 ] [ e; w; h ]

let json_field_shape () =
  let d =
    D.make ~span:{ D.start = 3; stop = 7 } ~subject:"r" ~detail:"why"
      ~code:"OQF001" ~severity:D.Error "boom"
  in
  Alcotest.(check string) "object rendering"
    {|{"code":"OQF001","severity":"error","subject":"r","message":"boom","detail":"why","span":{"start":3,"stop":7}}|}
    (D.to_json d);
  let bare = D.make ~code:"OQF005" ~severity:D.Warning "m" in
  Alcotest.(check string) "optional fields omitted"
    {|{"code":"OQF005","severity":"warning","message":"m"}|}
    (D.to_json bare);
  Alcotest.(check string) "empty list" "[]" (D.list_to_json [])

let registry_covers_every_emitted_code () =
  let registered = List.map (fun (c, _, _) -> c) D.registry in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " registered") true (List.mem c registered))
    [
      "OQF001"; "OQF002"; "OQF003"; "OQF004"; "OQF005"; "OQF006"; "OQF101";
      "OQF102"; "OQF103"; "OQF201"; "OQF202"; "OQF203"; "OQF301"; "OQF302";
      "OQF303"; "OQF304"; "OQF305";
    ]

(* The golden file pins the serialized JSON of every registered code:
   a registry edit (new code, changed severity or summary) must be a
   conscious change to the fixture too, because [oqf check --list-codes
   --format json] is machine-consumed by CI gates.  The test runs from
   the dune sandbox (fixtures/ is a declared dep) or from the workspace
   root under [dune exec]. *)
let golden_path name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "fixtures") name

let registry_json_matches_golden () =
  let path = golden_path "oqf_codes.golden.json" in
  if not (Sys.file_exists path) then
    Alcotest.failf "golden file %s not found (cwd %s)" path (Sys.getcwd ());
  let ic = open_in_bin path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let rendered =
    D.list_to_json
      (List.map
         (fun (code, severity, message) -> D.make ~code ~severity message)
         D.registry)
  in
  Alcotest.(check string)
    "registry JSON is pinned (update test/fixtures/oqf_codes.golden.json \
     deliberately when adding codes)"
    (String.trim golden) (String.trim rendered)

let every_registered_code_renders () =
  List.iter
    (fun (code, severity, message) ->
      let d = D.make ~code ~severity message in
      let text = D.to_string d in
      Alcotest.(check bool) (code ^ " text rendering mentions the code") true
        (Astring.String.is_infix ~affix:code text);
      let json = D.to_json d in
      Alcotest.(check bool) (code ^ " JSON rendering mentions the code") true
        (Astring.String.is_infix ~affix:("\"" ^ code ^ "\"") json);
      Alcotest.(check bool) (code ^ " summary is non-empty") true
        (String.length message > 0))
    D.registry

(* --- expression codes ---------------------------------------------- *)

let oqf001_trivially_empty () =
  let ds = check "A >d C" in
  Alcotest.(check bool) "OQF001 on non-edge direct inclusion" true
    (has "OQF001" ds);
  Alcotest.(check bool) "it is an error" true (D.has_errors ds);
  let ds = check "A > D" in
  Alcotest.(check bool) "OQF001 on unreachable pair" true (has "OQF001" ds);
  Alcotest.(check (list string)) "clean expression is clean" []
    (codes (check "A > B"))

let oqf002_unknown_name () =
  let ds = check "A > Nope" in
  Alcotest.(check bool) "OQF002 raised" true (has "OQF002" ds);
  Alcotest.(check bool) "unknown name is an error" true (D.has_errors ds)

let oqf003_004_optimizer_hints () =
  let ds = check "A >d B" in
  Alcotest.(check bool) "weaken-direct hint" true (has "OQF003" ds);
  Alcotest.(check bool) "hints alone are not errors" false (D.has_errors ds);
  let ds = check "A > B > C" in
  Alcotest.(check bool) "shorten hint" true (has "OQF004" ds)

let oqf005_dead_union_arm () =
  let ds = check "(A >d C) | (A > B)" in
  Alcotest.(check bool) "dead arm flagged" true (has "OQF005" ds);
  Alcotest.(check bool) "whole expression is not OQF001" false
    (has "OQF001" ds);
  Alcotest.(check bool) "a dead arm is only a warning" false (D.has_errors ds)

let oqf006_cost_threshold () =
  let ds = check ~cost_threshold:1. "A >d B" in
  Alcotest.(check bool) "tiny threshold trips OQF006" true (has "OQF006" ds);
  let ds = check ~cost_threshold:1e12 "A >d B" in
  Alcotest.(check bool) "huge threshold is quiet" false (has "OQF006" ds);
  (* weakened-away direct inclusions don't warn: A > B has no direct op *)
  let ds = check ~cost_threshold:1. "A > B" in
  Alcotest.(check bool) "no direct operator, no OQF006" false (has "OQF006" ds)

let spans_anchor_into_source () =
  List.iter
    (fun d ->
      match d.D.span with
      | None -> ()
      | Some { D.start; stop } ->
          Alcotest.(check bool) "span within text" true
            (0 <= start && start < stop && stop <= String.length "(A >d C) | (A > B)"))
    (check "(A >d C) | (A > B)")

(* --- qcheck soundness (satellite): anything the analyzer calls empty
   really is empty under the naive reference evaluator ---------------- *)

let soundness_flagged_exprs_are_empty =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         "OQF001/OQF005-flagged (sub)expressions evaluate empty (naive eval)"
       ~count:250
       QCheck.(make Gen.(int_bound 100000))
       (fun seed ->
         let seed = 1 + (seed mod 9973) in
         let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
         let e =
           if Stdx.Prng.bool prng then Test_ralg.Gen_instance.random_chain prng rig
           else
             Test_ralg.random_general prng
               (Array.of_list (Ralg.Rig.names rig))
               3
         in
         let ds = Analysis.Expr_check.check rig e in
         (* OQF001: the whole expression must be empty on the instance *)
         if List.exists (fun d -> d.D.code = "OQF001") ds then begin
           let v = Ralg.Naive_eval.eval inst e in
           if not (Pat.Region_set.is_empty v) then
             QCheck.Test.fail_reportf "seed %d: OQF001 but %s is non-empty"
               seed (Ralg.Expr.to_string e)
         end;
         (* every subexpression behind an OQF001/OQF005 is standalone
            trivial; each must be empty on its own *)
         List.iter
           (fun sub ->
             let v = Ralg.Naive_eval.eval inst sub in
             if not (Pat.Region_set.is_empty v) then
               QCheck.Test.fail_reportf
                 "seed %d: flagged subexpression %s of %s is non-empty" seed
                 (Ralg.Expr.to_string sub) (Ralg.Expr.to_string e))
           (Analysis.Expr_check.trivial_subexprs rig e);
         true))

(* --- containment (tentpole): every lattice/congruence rule has a
   positive witness, and qcheck validates every Contained verdict
   against the naive reference evaluator ------------------------------ *)

module C = Analysis.Contain

let contained a b = C.leq rig (parse a) (parse b) = C.Contained

let contain_lattice_rules () =
  let yes a b =
    Alcotest.(check bool) (a ^ " contained in " ^ b) true (contained a b)
  and no a b =
    Alcotest.(check bool) (a ^ " unknown vs " ^ b) false (contained a b)
  in
  yes "A" "A";
  yes "A >d C" "B" (* trivially-empty left side (Prop 3.3) *);
  yes {|word["x"](A)|} "A" (* filters shrink *);
  yes "A > B" "A";
  yes "inner(A)" "A";
  yes "outer(A)" "A";
  yes "depth[1](A,B)" "A";
  yes "A & B" "A";
  yes "A - B" "A";
  yes "A | (A & B)" "A" (* join on the left *);
  yes "A" "A | B" (* join on the right *);
  yes "A & B" "B & A" (* meet decomposition *);
  no "A" "B";
  no "A" "A & B";
  no "A > B" "B"

let contain_congruence_rules () =
  let yes a b =
    Alcotest.(check bool) (a ^ " contained in " ^ b) true (contained a b)
  in
  yes "A >d B" "A > B" (* direct implies simple *);
  yes {|sigma["x"](A)|} {|word["x"](A)|} (* exact implies contains *);
  yes "depth[0](A,B)" "A >d B" (* depth-0 coincides with direct *);
  yes "A >d B" "depth[0](A,B)";
  yes "depth[2](A,B)" "A > B" (* a depth witness is an inclusion *);
  yes "(A & B) > C" "A > C" (* chains are covariant *);
  yes "A - B" "A - (B & C)" (* difference is right-contravariant *);
  yes "A > B" "A >d B"
  (* Prop 3.5a on this RIG: every A-to-B walk is one edge, so the
     optimizer weakens >d and both sides normalize to A > B *);
  (* selection prefix lattice has no concrete syntax; build the AST *)
  let sel s w e = Ralg.Expr.Select (s w, parse e) in
  Alcotest.(check bool) "prefix weakens to shorter prefix" true
    (C.leq rig
       (sel (fun w -> Ralg.Expr.Prefix_word w) "abc" "A")
       (sel (fun w -> Ralg.Expr.Prefix_word w) "ab" "A")
    = C.Contained);
  Alcotest.(check bool) "exact implies prefix of itself" true
    (C.leq rig
       (sel (fun w -> Ralg.Expr.Exactly_word w) "abc" "A")
       (sel (fun w -> Ralg.Expr.Prefix_word w) "a" "A")
    = C.Contained);
  Alcotest.(check bool) "strict chain implies non-strict" true
    (C.leq rig
       (Ralg.Expr.Chain_strict (parse "A", Ralg.Expr.Including, parse "B"))
       (parse "A > B")
    = C.Contained)

let contain_equiv_and_empty () =
  Alcotest.(check bool) "depth-0 equivalent to direct chain" true
    (C.equiv rig (parse "depth[0](A,B)") (parse "A >d B") = C.Contained);
  Alcotest.(check bool) "containment-empty difference" true
    (C.empty rig (parse {|word["x"](A) - A|}));
  Alcotest.(check bool) "Prop 3.3 emptiness still included" true
    (C.empty rig (parse "A >d C"));
  Alcotest.(check bool) "plain name is not empty" false (C.empty rig (parse "A"));
  Alcotest.(check bool) "unknown names give no verdict" true
    (C.leq rig (parse "Nope") (parse "Nope | A") = C.Unknown)

let contain_minimize_units () =
  let m s = Ralg.Expr.to_string (C.minimize rig (parse s)) in
  let id s = Alcotest.(check string) ("minimize keeps " ^ s) s (m s) in
  Alcotest.(check string) "drop implied conjunct" (m "A > B")
    (m "(A > B) & A");
  Alcotest.(check string) "drop subsumed union arm" (m "A")
    (m {|word["x"](A) | A|});
  Alcotest.(check string) "drop empty subtrahend" (m "A")
    (m "A - (B >d A)");
  Alcotest.(check string) "minimize recurses under chains" (m "(A & B) > C")
    (m "((A & B) & A) > C");
  id "A & B";
  id "A | B";
  id "A - B"

(* Derive [a] from [b] by sound strengthening steps, so the qcheck
   harness actually reaches Contained verdicts (a random pair almost
   never does) and every congruence rule gets semantic scrutiny. *)
let random_op prng =
  Stdx.Prng.choose prng
    [|
      Ralg.Expr.Including; Ralg.Expr.Directly_including; Ralg.Expr.Included;
      Ralg.Expr.Directly_included;
    |]

let random_selection prng =
  let w = Stdx.Prng.choose prng [| "a"; "b"; "c"; "ab" |] in
  match Stdx.Prng.int prng 3 with
  | 0 -> Ralg.Expr.Exactly_word w
  | 1 -> Ralg.Expr.Contains_word w
  | _ -> Ralg.Expr.Prefix_word w

let rec strengthen prng names e n =
  if n = 0 then e
  else begin
    let module E = Ralg.Expr in
    let r () = Test_ralg.random_general prng names 2 in
    let e' =
      match Stdx.Prng.int prng 10 with
      | 0 -> E.Select (random_selection prng, e)
      | 1 ->
          if Stdx.Prng.bool prng then E.Setop (E.Inter, e, r ())
          else E.Setop (E.Inter, r (), e)
      | 2 -> E.Setop (E.Diff, e, r ())
      | 3 -> E.Chain (e, random_op prng, r ())
      | 4 -> E.Chain_strict (e, random_op prng, r ())
      | 5 -> E.Innermost e
      | 6 -> E.Outermost e
      | 7 -> begin
          (* strengthen an operator in place *)
          match e with
          | E.Chain (a, E.Including, b) -> E.Chain (a, E.Directly_including, b)
          | E.Chain (a, E.Included, b) -> E.Chain (a, E.Directly_included, b)
          | E.Chain (a, op, b) -> E.Chain_strict (a, op, b)
          | _ -> E.Select (random_selection prng, e)
        end
      | 8 -> begin
          (* strengthen a selection, or pick one union arm *)
          match e with
          | E.Select (E.Contains_word w, x) -> E.Select (E.Exactly_word w, x)
          | E.Select (E.Prefix_word p, x) ->
              E.Select (E.Exactly_word (p ^ "b"), x)
          | E.Setop (E.Union, a, b) -> if Stdx.Prng.bool prng then a else b
          | _ -> E.Setop (E.Inter, e, r ())
        end
      | _ -> begin
          (* push the strengthening into a covariant operand, or grow a
             subtrahend (right-contravariance) *)
          match e with
          | E.Chain (a, op, b) -> E.Chain (strengthen prng names a 1, op, b)
          | E.Setop (E.Union, a, b) ->
              E.Setop (E.Union, strengthen prng names a 1, b)
          | E.Setop (E.Diff, a, b) ->
              E.Setop (E.Diff, a, E.Setop (E.Union, b, r ()))
          | _ -> E.Setop (E.Diff, e, r ())
        end
    in
    strengthen prng names e' (n - 1)
  end

let contained_verdicts_seen = ref 0

let soundness_containment =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         "Contained/empty/minimize verdicts hold under the naive evaluator"
       ~count:250
       QCheck.(make Gen.(int_bound 100000))
       (fun seed ->
         let seed = 1 + (seed mod 9973) in
         let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
         let names = Array.of_list (Ralg.Rig.names rig) in
         let base = Test_ralg.random_general prng names 3 in
         let strong = strengthen prng names base (1 + Stdx.Prng.int prng 3) in
         let pairs =
           [
             (strong, base);
             ( Test_ralg.random_general prng names 2,
               Test_ralg.random_general prng names 2 );
           ]
         in
         List.iter
           (fun (a, b) ->
             if C.leq rig a b = C.Contained then begin
               incr contained_verdicts_seen;
               let va = Ralg.Naive_eval.eval inst a
               and vb = Ralg.Naive_eval.eval inst b in
               if not (Pat.Region_set.subset va vb) then
                 QCheck.Test.fail_reportf
                   "seed %d: claimed %s contained in %s, but a region escapes"
                   seed (Ralg.Expr.to_string a) (Ralg.Expr.to_string b)
             end)
           pairs;
         let e = Test_ralg.random_general prng names 3 in
         if
           C.empty rig e
           && not (Pat.Region_set.is_empty (Ralg.Naive_eval.eval inst e))
         then
           QCheck.Test.fail_reportf "seed %d: empty verdict on non-empty %s"
             seed (Ralg.Expr.to_string e);
         let m = C.minimize rig strong in
         if Ralg.Expr.size m > Ralg.Expr.size strong then
           QCheck.Test.fail_reportf "seed %d: minimize grew %s into %s" seed
             (Ralg.Expr.to_string strong) (Ralg.Expr.to_string m);
         if
           not
             (Pat.Region_set.equal
                (Ralg.Naive_eval.eval inst m)
                (Ralg.Naive_eval.eval inst strong))
         then
           QCheck.Test.fail_reportf
             "seed %d: minimize changed the answer of %s => %s" seed
             (Ralg.Expr.to_string strong) (Ralg.Expr.to_string m);
         true))

(* ordered after the qcheck case in the suite: the property run must
   actually have exercised the Contained branch, else it proves
   nothing *)
let containment_property_not_vacuous () =
  Alcotest.(check bool) "Contained verdicts were reached" true
    (!contained_verdicts_seen > 0)

(* --- schema checks -------------------------------------------------- *)

let ghost_view =
  let g =
    Fschema.Grammar.create_exn ~root:"Doc"
      [
        {
          Fschema.Grammar.lhs = "Doc";
          rhs =
            Fschema.Grammar.Seq
              [
                Fschema.Grammar.Lit "{";
                Fschema.Grammar.Star { nonterm = "Item"; separator = None };
                Fschema.Grammar.Lit "}";
              ];
        };
        {
          Fschema.Grammar.lhs = "Item";
          rhs =
            Fschema.Grammar.Seq
              [
                Fschema.Grammar.Lit "(";
                Fschema.Grammar.Nonterm "Name";
                Fschema.Grammar.Lit ")";
              ];
        };
        { Fschema.Grammar.lhs = "Name"; rhs = Fschema.Grammar.Token Word };
        { Fschema.Grammar.lhs = "Ghost"; rhs = Fschema.Grammar.Token Word };
      ]
  in
  Fschema.View.make ~grammar:g ~classes:[]

let oqf101_unreachable_nonterminal () =
  let ds = Analysis.Schema_check.check ghost_view in
  let unreachable =
    List.filter (fun d -> d.D.code = "OQF101") ds
    |> List.filter_map (fun d -> d.D.subject)
  in
  Alcotest.(check (list string)) "only Ghost is unreachable" [ "Ghost" ]
    unreachable

let oqf102_declared_rig_mismatch () =
  let grammar = ghost_view.Fschema.View.grammar in
  let derived = Fschema.Rig_of_grammar.full grammar in
  Alcotest.(check (list string)) "matching declaration is quiet" []
    (Analysis.Schema_check.check ~declared_rig:derived ghost_view
    |> List.filter (fun d -> d.D.code = "OQF102")
    |> codes);
  (* drop an edge and a node from the declaration: both diffs reported,
     as errors *)
  let declared =
    Ralg.Rig.create
      ~names:[ "Doc"; "Item"; "Ghost" ]
      ~edges:[ ("Doc", "Item") ]
  in
  let ds =
    Analysis.Schema_check.check ~declared_rig:declared ghost_view
    |> List.filter (fun d -> d.D.code = "OQF102")
  in
  Alcotest.(check bool) "mismatches found" true (List.length ds >= 2);
  Alcotest.(check bool) "inconsistency is an error" true (D.has_errors ds);
  let details = List.filter_map (fun d -> d.D.detail) ds in
  Alcotest.(check bool) "missing node named" true (List.mem "Name" details);
  Alcotest.(check bool) "missing edge named" true
    (List.mem "Item -> Name" details)

let bibtex_schema_is_error_free () =
  let view =
    match Oqf_catalog.Schemas.find "bibtex" with
    | Some v -> v
    | None -> Alcotest.fail "bibtex schema missing"
  in
  let ds = Analysis.Schema_check.check view in
  Alcotest.(check bool) "built-in schema has no errors" false (D.has_errors ds)

(* --- whole-query analysis ------------------------------------------ *)

let bibtex_env () =
  let view =
    match Oqf_catalog.Schemas.find "bibtex" with
    | Some v -> v
    | None -> Alcotest.fail "bibtex schema missing"
  in
  let index = Fschema.Grammar.indexable view.Fschema.View.grammar in
  let env = Oqf.Compile.env view ~index in
  (env, Ralg.Rig.partial env.Oqf.Compile.full_rig ~keep:index)

let query_check text =
  let env, query_rig = bibtex_env () in
  (Oqf.Check.query ~text env ~query_rig (Odb.Query_parser.parse_exn text))
    .Oqf.Check.diagnostics

let query_impossible_path_is_oqf001 () =
  let ds =
    query_check {|SELECT r FROM References r WHERE r.Title.Last_Name = "C"|}
  in
  Alcotest.(check bool) "provably empty query is an error" true
    (has "OQF001" ds);
  Alcotest.(check bool) "path-level witness attached" true (has "OQF005" ds)

let query_unknown_attribute_warns () =
  let ds = query_check {|SELECT r.Bogus FROM References r|} in
  Alcotest.(check bool) "unknown attribute is OQF002" true (has "OQF002" ds);
  (* the planner treats it as a wildcard, so this must NOT refuse *)
  Alcotest.(check bool) "but only a warning" false (D.has_errors ds)

let query_clean_is_clean () =
  let ds = query_check {|SELECT r.Title FROM References r|} in
  Alcotest.(check (list string)) "no diagnostics" [] (codes ds)

let suites =
  [
    ( "analysis.diagnostic",
      [
        Alcotest.test_case "span_of_word matches whole words" `Quick
          span_of_word_whole_words_only;
        Alcotest.test_case "sort ranks errors first" `Quick
          sort_ranks_errors_first;
        Alcotest.test_case "json shape" `Quick json_field_shape;
        Alcotest.test_case "registry covers every emitted code" `Quick
          registry_covers_every_emitted_code;
        Alcotest.test_case "registry JSON matches the golden file" `Quick
          registry_json_matches_golden;
        Alcotest.test_case "every registered code renders" `Quick
          every_registered_code_renders;
      ] );
    ( "analysis.expr",
      [
        Alcotest.test_case "OQF001 trivially empty" `Quick
          oqf001_trivially_empty;
        Alcotest.test_case "OQF002 unknown name" `Quick oqf002_unknown_name;
        Alcotest.test_case "OQF003/OQF004 optimizer hints" `Quick
          oqf003_004_optimizer_hints;
        Alcotest.test_case "OQF005 dead union arm" `Quick oqf005_dead_union_arm;
        Alcotest.test_case "OQF006 cost threshold" `Quick oqf006_cost_threshold;
        Alcotest.test_case "spans stay inside the source" `Quick
          spans_anchor_into_source;
        soundness_flagged_exprs_are_empty;
      ] );
    ( "analysis.contain",
      [
        Alcotest.test_case "lattice rules" `Quick contain_lattice_rules;
        Alcotest.test_case "congruence rules" `Quick contain_congruence_rules;
        Alcotest.test_case "equiv and empty" `Quick contain_equiv_and_empty;
        Alcotest.test_case "minimize units" `Quick contain_minimize_units;
        soundness_containment;
        Alcotest.test_case "property run was not vacuous" `Quick
          containment_property_not_vacuous;
      ] );
    ( "analysis.schema",
      [
        Alcotest.test_case "OQF101 unreachable non-terminal" `Quick
          oqf101_unreachable_nonterminal;
        Alcotest.test_case "OQF102 declared RIG mismatch" `Quick
          oqf102_declared_rig_mismatch;
        Alcotest.test_case "built-in bibtex schema is error-free" `Quick
          bibtex_schema_is_error_free;
      ] );
    ( "analysis.query",
      [
        Alcotest.test_case "impossible path: OQF001 + OQF005" `Quick
          query_impossible_path_is_oqf001;
        Alcotest.test_case "unknown attribute: OQF002 warning" `Quick
          query_unknown_attribute_warns;
        Alcotest.test_case "clean query has no diagnostics" `Quick
          query_clean_is_clean;
      ] );
  ]
