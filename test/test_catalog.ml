(* Tests for the catalog subsystem: the hardened index store, the
   incremental (append-only) maintenance path — checked for equivalence
   with a from-scratch rebuild on random appended tails — the bounded
   LRU instance cache, and catalog staleness/refresh end to end. *)

let temp_dir () =
  let path = Filename.temp_file "oqf_catalog_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_fail = function Ok x -> x | Error e -> Alcotest.fail e

let log_text n = Workload.Log_gen.generate (Workload.Log_gen.with_size n)

let log_keep = Fschema.Grammar.indexable Fschema.Log_schema.grammar

let full_instance view keep text =
  or_fail (Fschema.View.index_file view text ~keep)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance == full rebuild                             *)

let check_equal_instances ~msg incremental full =
  Alcotest.(check (list string))
    (msg ^ ": same names")
    (Pat.Instance.names full)
    (Pat.Instance.names incremental);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: region set %s equal" msg name)
        true
        (Pat.Region_set.equal
           (Pat.Instance.find incremental name)
           (Pat.Instance.find full name)))
    (Pat.Instance.names full)

let check_equal_word_index ~msg incremental full words =
  List.iter
    (fun w ->
      Alcotest.(check (list int))
        (Printf.sprintf "%s: match points of %S equal" msg w)
        (Array.to_list (Pat.Word_index.match_points (Pat.Instance.word_index full) w))
        (Array.to_list
           (Pat.Word_index.match_points (Pat.Instance.word_index incremental) w)))
    words

(* Log_gen draws its randomness per entry in sequence, so the n-entry
   corpus is a byte prefix of the (n + k)-entry one: growing n to n + k
   is exactly an append of whole entries. *)
let incremental_equals_full =
  QCheck.Test.make ~count:30 ~name:"incremental refresh == full rebuild (log)"
    QCheck.(pair (int_range 1 60) (int_range 1 40))
    (fun (n, k) ->
      let view = Fschema.Log_schema.view in
      let base = log_text n in
      let grown = log_text (n + k) in
      assert (String.sub grown 0 (String.length base) = base);
      let old_instance =
        full_instance view log_keep (Pat.Text.of_string base)
      in
      let new_text = Pat.Text.of_string grown in
      let incremental =
        match
          Oqf_catalog.Incremental.extend_instance view ~old_instance
            ~old_len:(String.length base) new_text
        with
        | Ok i -> i
        | Error e -> QCheck.Test.fail_reportf "extend failed: %s" e
      in
      let full = full_instance view log_keep new_text in
      List.iter
        (fun name ->
          if
            not
              (Pat.Region_set.equal
                 (Pat.Instance.find incremental name)
                 (Pat.Instance.find full name))
          then
            QCheck.Test.fail_reportf "region set %s differs (n=%d k=%d)" name n
              k)
        (Pat.Instance.names full);
      (* the extended word index answers like a from-scratch one *)
      List.iter
        (fun w ->
          if
            Pat.Word_index.match_points (Pat.Instance.word_index incremental) w
            <> Pat.Word_index.match_points (Pat.Instance.word_index full) w
          then QCheck.Test.fail_reportf "match points of %S differ" w)
        [ "ERROR"; "INFO"; "auth"; "web"; "level"; "msg" ];
      (* and the result still satisfies the RIG of its indexed names *)
      (match Oqf_catalog.Incremental.verify_against_rig view incremental with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "%s" e);
      true)

let incremental_tests =
  [
    QCheck_alcotest.to_alcotest incremental_equals_full;
    Alcotest.test_case "append shapes of the built-in schemas" `Quick (fun () ->
        let shape g = Oqf_catalog.Incremental.append_shape g in
        Alcotest.(check bool)
          "log is append-only" true
          (shape Fschema.Log_schema.grammar <> None);
        Alcotest.(check bool)
          "mbox is append-only" true
          (shape Fschema.Mbox_schema.grammar <> None);
        Alcotest.(check bool)
          "bibtex is append-only" true
          (shape Fschema.Bibtex_schema.grammar <> None);
        Alcotest.(check bool)
          "sgml (closing tag) is not" true
          (shape Fschema.Sgml_schema.grammar = None));
    Alcotest.test_case "mbox append extends incrementally" `Quick (fun () ->
        let view = Fschema.Mbox_schema.view in
        let keep = Fschema.Grammar.indexable Fschema.Mbox_schema.grammar in
        let base = Workload.Mbox_gen.generate (Workload.Mbox_gen.with_size 6) in
        let grown = Workload.Mbox_gen.generate (Workload.Mbox_gen.with_size 9) in
        Alcotest.(check string)
          "mbox generator grows by appending" base
          (String.sub grown 0 (String.length base));
        let old_instance = full_instance view keep (Pat.Text.of_string base) in
        let new_text = Pat.Text.of_string grown in
        let incremental =
          or_fail
            (Oqf_catalog.Incremental.extend_instance view ~old_instance
               ~old_len:(String.length base) new_text)
        in
        check_equal_instances ~msg:"mbox" incremental
          (full_instance view keep new_text);
        check_equal_word_index ~msg:"mbox" incremental
          (full_instance view keep new_text)
          [ "FROM"; "SUBJECT"; "edu" ]);
    Alcotest.test_case "garbage tail is rejected" `Quick (fun () ->
        let view = Fschema.Log_schema.view in
        let base = log_text 3 in
        let grown = base ^ "not a log entry at all\n" in
        let old_instance =
          full_instance view log_keep (Pat.Text.of_string base)
        in
        match
          Oqf_catalog.Incremental.extend_instance view ~old_instance
            ~old_len:(String.length base)
            (Pat.Text.of_string grown)
        with
        | Ok _ -> Alcotest.fail "garbage tail must not extend"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Index store hardening                                               *)

let store_instance () =
  let text = Pat.Text.of_string (Fschema.Log_schema.sample) in
  full_instance Fschema.Log_schema.view log_keep text

let expect_error ~msg path classify =
  match Pat.Index_store.load_result ~path with
  | Ok _ -> Alcotest.fail (msg ^ ": load unexpectedly succeeded")
  | Error e ->
      Alcotest.(check bool)
        (msg ^ ": classified (" ^ Pat.Index_store.error_message e ^ ")")
        true (classify e)

let index_store_tests =
  [
    Alcotest.test_case "save/load round-trips" `Quick (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "a.idx" in
        let instance = store_instance () in
        Pat.Index_store.save ~path instance;
        Alcotest.(check unit)
          "verify passes" ()
          (or_fail
             (Result.map_error Pat.Index_store.error_message
                (Pat.Index_store.verify ~path)));
        let loaded = Pat.Index_store.load ~path in
        check_equal_instances ~msg:"round-trip" loaded instance);
    Alcotest.test_case "foreign file is not an index" `Quick (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "foreign" in
        write_file path "just some text, definitely no index";
        expect_error ~msg:"foreign" path (function
          | Pat.Index_store.Not_an_index_file _ -> true
          | _ -> false));
    Alcotest.test_case "version-1 file reports a version mismatch" `Quick
      (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "v1.idx" in
        (* the seed format: bare magic, then the marshalled payload *)
        write_file path ("OQF-INDEX-1" ^ Marshal.to_string ("old", []) []);
        expect_error ~msg:"v1" path (function
          | Pat.Index_store.Version_mismatch { found = 1; _ } -> true
          | _ -> false));
    Alcotest.test_case "flipped payload byte fails the checksum" `Quick
      (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "corrupt.idx" in
        Pat.Index_store.save ~path (store_instance ());
        let raw = Bytes.of_string (read_file path) in
        let pos = Bytes.length raw - 5 in
        Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0xff));
        write_file path (Bytes.to_string raw);
        expect_error ~msg:"corrupt" path (function
          | Pat.Index_store.Corrupt { reason = "checksum mismatch"; _ } -> true
          | _ -> false));
    Alcotest.test_case "truncated file is corrupt" `Quick (fun () ->
        let dir = temp_dir () in
        let path = Filename.concat dir "trunc.idx" in
        Pat.Index_store.save ~path (store_instance ());
        let raw = read_file path in
        write_file path (String.sub raw 0 (String.length raw / 2));
        expect_error ~msg:"truncated" path (function
          | Pat.Index_store.Corrupt _ -> true
          | _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Instance cache                                                      *)

let small_instance label =
  (* distinct texts so instances differ and have known costs *)
  let text = Pat.Text.of_string ("== log ==\n[t] level=INFO service=" ^ label ^ " msg=\"x\"\n") in
  full_instance Fschema.Log_schema.view log_keep text

let cache_tests =
  [
    Alcotest.test_case "hits and misses are counted" `Quick (fun () ->
        let cache = Oqf_catalog.Instance_cache.create ~budget_bytes:(1 lsl 20) in
        let i = small_instance "auth" in
        Alcotest.(check bool)
          "miss first" true
          (Oqf_catalog.Instance_cache.find cache "a" = None);
        Oqf_catalog.Instance_cache.add cache "a" i;
        Alcotest.(check bool)
          "hit second" true
          (Oqf_catalog.Instance_cache.find cache "a" <> None);
        let s = Oqf_catalog.Instance_cache.stats cache in
        Alcotest.(check int) "one hit" 1 s.Oqf_catalog.Instance_cache.hits;
        Alcotest.(check int) "one miss" 1 s.Oqf_catalog.Instance_cache.misses);
    Alcotest.test_case "budget evicts the least recently used" `Quick
      (fun () ->
        let one = small_instance "auth" in
        let cost = Oqf_catalog.Instance_cache.cost_of_instance one in
        (* room for two instances of this size, not three *)
        let cache =
          Oqf_catalog.Instance_cache.create ~budget_bytes:((2 * cost) + (cost / 2))
        in
        Oqf_catalog.Instance_cache.add cache "a" one;
        Oqf_catalog.Instance_cache.add cache "b" (small_instance "mail");
        ignore (Oqf_catalog.Instance_cache.find cache "a");
        (* "b" is now least recently used; inserting "c" must evict it *)
        Oqf_catalog.Instance_cache.add cache "c" (small_instance "web9");
        Alcotest.(check bool)
          "a survives" true
          (Oqf_catalog.Instance_cache.find cache "a" <> None);
        Alcotest.(check bool)
          "b evicted" true
          (Oqf_catalog.Instance_cache.find cache "b" = None);
        let s = Oqf_catalog.Instance_cache.stats cache in
        Alcotest.(check int)
          "one eviction" 1 s.Oqf_catalog.Instance_cache.evictions);
    Alcotest.test_case "oversized instances are not cached" `Quick (fun () ->
        let cache = Oqf_catalog.Instance_cache.create ~budget_bytes:16 in
        Oqf_catalog.Instance_cache.add cache "a" (small_instance "auth");
        Alcotest.(check int) "empty" 0 (Oqf_catalog.Instance_cache.count cache));
  ]

(* ------------------------------------------------------------------ *)
(* Catalog end to end                                                  *)

let setup_catalog n =
  let dir = temp_dir () in
  let log_path = Filename.concat dir "app.log" in
  write_file log_path (log_text n);
  let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" log_path)
  in
  (dir, log_path, cat)

let refresh_kind = function
  | Oqf_catalog.Catalog.Unchanged -> "unchanged"
  | Oqf_catalog.Catalog.Extended _ -> "extended"
  | Oqf_catalog.Catalog.Rebuilt _ -> "rebuilt"

let check_refresh msg expected cat path =
  let r = or_fail (Oqf_catalog.Catalog.refresh ~verify_rig:true cat path) in
  Alcotest.(check string) msg expected (refresh_kind r)

let check_matches_rebuild msg cat log_path =
  let loaded = or_fail (Oqf_catalog.Catalog.load cat log_path) in
  let full =
    full_instance Fschema.Log_schema.view log_keep (Pat.Text.of_file log_path)
  in
  check_equal_instances ~msg loaded full

let catalog_tests =
  [
    Alcotest.test_case "fresh entry refreshes to Unchanged" `Quick (fun () ->
        let _, log_path, cat = setup_catalog 10 in
        check_refresh "no change" "unchanged" cat log_path);
    Alcotest.test_case "appended source extends incrementally" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 10 in
        write_file log_path (log_text 16);
        (match Oqf_catalog.Catalog.status cat with
        | [ (_, Oqf_catalog.Catalog.Appended _) ] -> ()
        | _ -> Alcotest.fail "status must report the append");
        check_refresh "append" "extended" cat log_path;
        check_matches_rebuild "after append" cat log_path;
        check_refresh "now fresh" "unchanged" cat log_path);
    Alcotest.test_case "truncated source falls back to full rebuild" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 10 in
        write_file log_path (log_text 6);
        check_refresh "truncation" "rebuilt" cat log_path;
        check_matches_rebuild "after truncation" cat log_path);
    Alcotest.test_case "edited source falls back to full rebuild" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 10 in
        let contents = read_file log_path in
        let edited =
          (* change one digit mid-file: same length, different bytes *)
          String.mapi
            (fun i c -> if i = String.length contents / 2 && c <> '\n' then 'Z' else c)
            contents
        in
        let edited =
          if edited = contents then contents ^ "extra garbage" else edited
        in
        write_file log_path edited;
        match Oqf_catalog.Catalog.refresh cat log_path with
        | Ok (Oqf_catalog.Catalog.Rebuilt _) | Error _ ->
            (* an edit that still parses rebuilds; an edit that breaks
               the grammar surfaces as an error — never Extended *)
            ()
        | Ok r ->
            Alcotest.failf "edit must not extend (got %s)" (refresh_kind r));
    Alcotest.test_case "grown-but-edited prefix rebuilds, not extends" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 10 in
        let grown = log_text 16 in
        let tampered =
          String.mapi (fun i c -> if i = 40 then (if c = '0' then '1' else '0') else c) grown
        in
        write_file log_path tampered;
        match or_fail (Oqf_catalog.Catalog.refresh cat log_path) with
        | Oqf_catalog.Catalog.Rebuilt _ -> ()
        | r -> Alcotest.failf "tampered prefix must rebuild (got %s)" (refresh_kind r));
    Alcotest.test_case "missing index file rebuilds" `Quick (fun () ->
        let _, log_path, cat = setup_catalog 8 in
        let e = Option.get (Oqf_catalog.Catalog.find cat log_path) in
        Sys.remove
          (Filename.concat (Oqf_catalog.Catalog.dir cat)
             e.Oqf_catalog.Catalog.index_file);
        check_refresh "missing index" "rebuilt" cat log_path);
    Alcotest.test_case "corrupt index file rebuilds" `Quick (fun () ->
        let _, log_path, cat = setup_catalog 8 in
        let e = Option.get (Oqf_catalog.Catalog.find cat log_path) in
        let idx =
          Filename.concat (Oqf_catalog.Catalog.dir cat)
            e.Oqf_catalog.Catalog.index_file
        in
        let raw = read_file idx in
        write_file idx (String.sub raw 0 (String.length raw - 7));
        (match Oqf_catalog.Catalog.status cat with
        | [ (_, Oqf_catalog.Catalog.Index_unreadable _) ] -> ()
        | _ -> Alcotest.fail "status must flag the corrupt index");
        Oqf_catalog.Instance_cache.remove (Oqf_catalog.Catalog.cache cat)
          log_path;
        check_refresh "corrupt index" "rebuilt" cat log_path);
    Alcotest.test_case "reopened catalog serves persisted entries" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 8 in
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        (match Oqf_catalog.Catalog.entries reopened with
        | [ e ] ->
            Alcotest.(check string) "source survives" log_path e.Oqf_catalog.Catalog.source;
            Alcotest.(check string) "schema survives" "log" e.Oqf_catalog.Catalog.schema
        | _ -> Alcotest.fail "one entry expected");
        check_matches_rebuild "reopened" reopened log_path);
    Alcotest.test_case "corpus runs straight off the catalog" `Quick (fun () ->
        let _, log_path, cat = setup_catalog 30 in
        let corpus = or_fail (Oqf.Corpus.of_catalog cat ~schema:"log") in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
        in
        let via_catalog = or_fail (Oqf.Corpus.run corpus q) in
        let direct =
          or_fail
            (Oqf.Execute.make_source_full Fschema.Log_schema.view
               (Pat.Text.of_file log_path))
        in
        let via_direct = or_fail (Oqf.Execute.run direct q) in
        Alcotest.(check int)
          "same answers"
          (List.length via_direct.Oqf.Execute.rows)
          (List.length via_catalog.Oqf.Corpus.rows);
        (* two catalog loads of the same entry: second is a cache hit *)
        let (_ : (Pat.Instance.t, string) result) =
          Oqf_catalog.Catalog.load cat log_path
        in
        let s =
          Oqf_catalog.Instance_cache.stats (Oqf_catalog.Catalog.cache cat)
        in
        Alcotest.(check bool)
          "cache saw hits" true
          (s.Oqf_catalog.Instance_cache.hits > 0));
    Alcotest.test_case "per-name stats persist through the manifest" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 20 in
        let stats_of c =
          match Oqf_catalog.Catalog.find c log_path with
          | Some e -> e.Oqf_catalog.Catalog.stats
          | None -> Alcotest.fail "entry vanished"
        in
        let stats = stats_of cat in
        Alcotest.(check (list string))
          "one stat line per indexed name"
          (List.sort compare log_keep)
          (List.sort compare (List.map (fun (n, _, _) -> n) stats));
        (* counts agree with the live instance *)
        let inst = or_fail (Oqf_catalog.Catalog.load cat log_path) in
        List.iter
          (fun (name, regions, mps) ->
            Alcotest.(check int) (name ^ " region count")
              (Pat.Region_set.cardinal (Pat.Instance.find inst name))
              regions;
            Alcotest.(check bool) (name ^ " match points plausible") true
              (mps >= 0 && (regions = 0 || mps > 0)))
          stats;
        (* ... and survive a close/reopen round-trip untouched *)
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check bool) "reopen preserves stats" true
          (stats = stats_of reopened));
    Alcotest.test_case "manifests without rstat lines still open" `Quick
      (fun () ->
        let _, log_path, cat = setup_catalog 6 in
        (* strip the stat lines, as a manifest from an older build *)
        let manifest =
          Filename.concat (Oqf_catalog.Catalog.dir cat) "CATALOG"
        in
        let stripped =
          read_file manifest |> String.split_on_char '\n'
          |> List.filter (fun l ->
                 not (String.starts_with ~prefix:"rstat " l))
          |> String.concat "\n"
        in
        write_file manifest stripped;
        let reopened = or_fail (Oqf_catalog.Catalog.open_dir
                                  (Oqf_catalog.Catalog.dir cat)) in
        match Oqf_catalog.Catalog.find reopened log_path with
        | Some e ->
            Alcotest.(check (list string)) "entry intact, stats empty" []
              (List.map (fun (n, _, _) -> n) e.Oqf_catalog.Catalog.stats)
        | None -> Alcotest.fail "legacy entry was dropped");
    Alcotest.test_case "adding the same source twice fails" `Quick (fun () ->
        let _, log_path, cat = setup_catalog 4 in
        match Oqf_catalog.Catalog.add cat ~schema:"log" log_path with
        | Ok _ -> Alcotest.fail "duplicate add must fail"
        | Error _ -> ());
    Alcotest.test_case "unknown index names are rejected" `Quick (fun () ->
        let dir = temp_dir () in
        let log_path = Filename.concat dir "x.log" in
        write_file log_path (log_text 3);
        let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
        match
          Oqf_catalog.Catalog.add cat ~schema:"log" ~index:[ "Nonsense" ]
            log_path
        with
        | Ok _ -> Alcotest.fail "bad index name must fail"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Crash safety, self-healing and offline repair                       *)

let manifest_path cat =
  Filename.concat (Oqf_catalog.Catalog.dir cat) "CATALOG"

let index_path cat source =
  let e = Option.get (Oqf_catalog.Catalog.find cat source) in
  Filename.concat (Oqf_catalog.Catalog.dir cat) e.Oqf_catalog.Catalog.index_file

(* damage an index file in a checksum-detectable way: flip one byte in
   the marshalled payload *)
let bit_flip_index cat source =
  let e = Option.get (Oqf_catalog.Catalog.find cat source) in
  let idx =
    Filename.concat (Oqf_catalog.Catalog.dir cat)
      e.Oqf_catalog.Catalog.index_file
  in
  let raw = Bytes.of_string (read_file idx) in
  let pos = Bytes.length raw - 7 in
  Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0x01));
  write_file idx (Bytes.to_string raw);
  (* the instance cache is keyed by index file *)
  Oqf_catalog.Instance_cache.remove
    (Oqf_catalog.Catalog.cache cat)
    e.Oqf_catalog.Catalog.index_file

let setup_two_file_catalog () =
  let dir = temp_dir () in
  let a = Filename.concat dir "a.log" in
  let b = Filename.concat dir "b.log" in
  write_file a (log_text 8);
  write_file b (log_text 5);
  let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" a)
  in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" b)
  in
  (dir, a, b, cat)

let healed_counter = Obs.Metrics.counter "catalog.healed"

let robustness_tests =
  [
    Alcotest.test_case "torn manifest: salvage, warn, rewrite" `Quick
      (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        let manifest = manifest_path cat in
        let raw = read_file manifest in
        (* cut into the second entry's block, as a crash without atomic
           rename would *)
        write_file manifest (String.sub raw 0 (String.length raw - 15));
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        (match Oqf_catalog.Catalog.entries reopened with
        | [ e ] ->
            Alcotest.(check string) "first entry survives" a
              e.Oqf_catalog.Catalog.source
        | es -> Alcotest.failf "expected 1 salvaged entry, got %d" (List.length es));
        (match Oqf_catalog.Catalog.recovery_warnings reopened with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "recovery must be reported");
        (* the salvaged manifest was rewritten at once: a second open
           is clean *)
        let again =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check (list string))
          "second open clean" []
          (Oqf_catalog.Catalog.recovery_warnings again));
    Alcotest.test_case "not-a-manifest still fails to open" `Quick (fun () ->
        let _, _, _, cat = setup_two_file_catalog () in
        write_file (manifest_path cat) "something else entirely\n";
        match Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat) with
        | Ok _ -> Alcotest.fail "bad magic must not open"
        | Error _ -> ());
    Alcotest.test_case "load self-heals a bit-flipped index" `Quick (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        bit_flip_index cat a;
        let healed_before = Obs.Metrics.value healed_counter in
        let loaded = or_fail (Oqf_catalog.Catalog.load cat a) in
        Alcotest.(check bool)
          "catalog.healed incremented" true
          (Obs.Metrics.value healed_counter > healed_before);
        let full =
          full_instance Fschema.Log_schema.view log_keep (Pat.Text.of_file a)
        in
        check_equal_instances ~msg:"healed instance equals rebuild" loaded full;
        (* the rewritten index is valid: a fresh open loads it without
           healing again *)
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        let healed_now = Obs.Metrics.value healed_counter in
        let (_ : Pat.Instance.t) = or_fail (Oqf_catalog.Catalog.load reopened a) in
        Alcotest.(check int) "no second heal" healed_now
          (Obs.Metrics.value healed_counter));
    Alcotest.test_case "load cannot heal when the source is gone" `Quick
      (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        bit_flip_index cat a;
        Sys.remove a;
        match Oqf_catalog.Catalog.load cat a with
        | Ok _ -> Alcotest.fail "no path to the data: load must fail"
        | Error e ->
            Alcotest.(check bool)
              "error names the missing source" true
              (let needle = "source file is missing" in
               let nh = String.length e and nn = String.length needle in
               let rec go i =
                 if i + nn > nh then false
                 else String.sub e i nn = needle || go (i + 1)
               in
               go 0));
    Alcotest.test_case "repair heals a corrupt index in place" `Quick
      (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        bit_flip_index cat a;
        (match Oqf_catalog.Catalog.repair cat with
        | [ (src, Oqf_catalog.Catalog.Healed _) ] ->
            Alcotest.(check string) "keyed by source" a src
        | acts -> Alcotest.failf "expected one heal, got %d actions" (List.length acts));
        match Oqf_catalog.Catalog.status cat with
        | [ (_, Oqf_catalog.Catalog.Fresh); (_, Oqf_catalog.Catalog.Fresh) ] -> ()
        | _ -> Alcotest.fail "everything fresh after repair");
    Alcotest.test_case "repair quarantines a sourceless entry and sweeps \
                        its orphan index" `Quick (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        Sys.remove a;
        let actions = Oqf_catalog.Catalog.repair cat in
        let quarantined, orphans =
          List.partition
            (fun (_, act) ->
              match act with
              | Oqf_catalog.Catalog.Quarantined _ -> true
              | _ -> false)
            actions
        in
        Alcotest.(check int) "one quarantine" 1 (List.length quarantined);
        Alcotest.(check string) "the sourceless entry" a (fst (List.hd quarantined));
        (* the drop commits a new generation whose inline retirement
           already deleted the dead index, so the orphan sweep finds
           nothing left to do *)
        Alcotest.(check int) "no orphans left for the sweep" 0
          (List.length orphans);
        (match Oqf_catalog.Catalog.entries cat with
        | [ e ] ->
            Alcotest.(check bool) "survivor is the other file" true
              (e.Oqf_catalog.Catalog.source <> a)
        | _ -> Alcotest.fail "one entry must survive");
        Alcotest.(check (list string))
          "no orphan files remain" []
          (Oqf_catalog.Catalog.orphan_index_files cat));
    Alcotest.test_case "repair on a healthy catalog is a no-op" `Quick
      (fun () ->
        let _, _, _, cat = setup_two_file_catalog () in
        Alcotest.(check int) "no actions" 0
          (List.length (Oqf_catalog.Catalog.repair cat)));
    Alcotest.test_case "robust corpus excludes only dead entries" `Quick
      (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        bit_flip_index cat a;
        Sys.remove a;
        let corpus, degraded =
          or_fail (Oqf.Corpus.of_catalog_robust cat ~schema:"log")
        in
        Alcotest.(check int) "one file served" 1
          (List.length (Oqf.Corpus.files corpus));
        match degraded with
        | [ d ] ->
            Alcotest.(check string) "the dead entry" a d.Oqf.Degrade.file;
            Alcotest.(check bool) "excluded" true
              (d.Oqf.Degrade.action = Oqf.Degrade.Excluded)
        | _ -> Alcotest.fail "one exclusion note expected");
  ]

(* ------------------------------------------------------------------ *)
(* Generations, snapshots and the watcher                              *)

let gen_pointer_file cat =
  Filename.concat (Oqf_catalog.Catalog.dir cat) "GEN"

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

let warned cat needle =
  List.exists
    (fun w -> has_substring w needle)
    (Oqf_catalog.Catalog.recovery_warnings cat)

(* Render answer rows to one comparable string: the property below is
   literally "the pinned reader's bytes never change". *)
let render_rows (rows : (string * Odb.Query_eval.row) list) =
  String.concat "\n"
    (List.map
       (fun (file, row) ->
         file ^ "|"
         ^ String.concat "," (List.map Odb.Value.to_display_string row))
       rows)

let iso_query =
  match
    Odb.Query_parser.parse
      "SELECT e.Service, e.Msg FROM Entries e WHERE e.Level = \"ERROR\""
  with
  | Ok q -> q
  | Error _ -> assert false

(* A reader pinned at generation G answers byte-identically while a
   writer commits G+1..G+k, across 1..8 shards.  Each read evicts the
   pinned index from the instance cache first, so it genuinely
   re-reads the pinned generation's files from disk — proving the
   writer's commits never touch them. *)
let snapshot_isolation =
  QCheck.Test.make ~count:12
    ~name:"pinned snapshot is byte-stable under concurrent commits"
    QCheck.(triple (int_range 4 24) (int_range 1 5) (int_range 1 8))
    (fun (n, k, shards) ->
      let dir = temp_dir () in
      let files = Array.init 3 (fun i -> Filename.concat dir (Printf.sprintf "f%d.log" i)) in
      let sizes = Array.init 3 (fun i -> n + i) in
      Array.iteri (fun i f -> write_file f (log_text sizes.(i))) files;
      let cat =
        match Oqf_catalog.Catalog.init (Filename.concat dir "cat") with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_reportf "init: %s" e
      in
      Array.iter
        (fun f ->
          match Oqf_catalog.Catalog.add cat ~schema:"log" f with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "add: %s" e)
        files;
      let snap = Oqf_catalog.Catalog.pin cat in
      let g0 = Oqf_catalog.Catalog.snapshot_generation snap in
      let read () =
        List.iter
          (fun (e : Oqf_catalog.Catalog.entry) ->
            Oqf_catalog.Instance_cache.remove
              (Oqf_catalog.Catalog.cache cat)
              e.index_file)
          (Oqf_catalog.Catalog.snapshot_entries snap);
        let corpus, degraded =
          match Oqf.Corpus.of_snapshot snap ~schema:"log" with
          | Ok cd -> cd
          | Error e -> QCheck.Test.fail_reportf "of_snapshot: %s" e
        in
        if degraded <> [] then
          QCheck.Test.fail_reportf "pinned read degraded (%d files lost)"
            (List.length degraded);
        match Exec.Driver.run_parallel ~jobs:shards corpus iso_query with
        | Ok out -> render_rows out.Exec.Driver.rows
        | Error e -> QCheck.Test.fail_reportf "query: %s" e
      in
      let reference = read () in
      for i = 1 to k do
        (* writer: append whole entries to one source (Log_gen's prefix
           property) and commit the refresh *)
        let j = (i - 1) mod Array.length files in
        sizes.(j) <- sizes.(j) + 2;
        write_file files.(j) (log_text sizes.(j));
        (match Oqf_catalog.Catalog.refresh cat files.(j) with
        | Ok _ -> ()
        | Error e -> QCheck.Test.fail_reportf "refresh %d: %s" i e);
        let now = read () in
        if now <> reference then
          QCheck.Test.fail_reportf
            "pinned rows changed after commit %d (gen %d -> %d)" i g0
            (Oqf_catalog.Catalog.generation cat)
      done;
      if Oqf_catalog.Catalog.generation cat <> g0 + k then
        QCheck.Test.fail_reportf "expected generation %d, got %d" (g0 + k)
          (Oqf_catalog.Catalog.generation cat);
      Oqf_catalog.Catalog.release snap;
      (* with the pin gone the superseded generations are retired: only
         the current generation's manifest image remains *)
      (match Oqf_catalog.Catalog.list_generations cat with
      | [ g ] when g = g0 + k -> ()
      | gs ->
          QCheck.Test.fail_reportf "expected only generation %d, got %d images"
            (g0 + k) (List.length gs));
      true)

let generation_tests =
  [
    QCheck_alcotest.to_alcotest snapshot_isolation;
    (* a crash between the CATALOG swap and the pointer move (the
       second gen.commit site) leaves a stale pointer: the manifest
       stays authoritative and the pointer is rewritten *)
    Alcotest.test_case "stale pointer after mid-commit crash is salvaged"
      `Quick (fun () ->
        let _, _, _, cat = setup_two_file_catalog () in
        let g = Oqf_catalog.Catalog.generation cat in
        Alcotest.(check bool) "two adds advanced the generation" true (g >= 2);
        write_file (gen_pointer_file cat) "oqf-gen 0\n";
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check int) "manifest generation wins" g
          (Oqf_catalog.Catalog.generation reopened);
        Alcotest.(check bool) "stale pointer reported" true
          (warned reopened "stale generation pointer");
        Alcotest.(check string) "pointer rewritten"
          (Printf.sprintf "oqf-gen %d\n" g)
          (read_file (gen_pointer_file reopened));
        let again =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check (list string))
          "second open clean" []
          (Oqf_catalog.Catalog.recovery_warnings again));
    (* a crash after MANIFEST.g(N+1) but before the CATALOG swap (the
       first gen.commit site) leaves the pointer behind a stray future
       image; if the pointer moved too, it reads ahead of the manifest
       and its number is adopted as the numbering floor *)
    Alcotest.test_case "pointer ahead of manifest becomes the numbering floor"
      `Quick (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        let g = Oqf_catalog.Catalog.generation cat in
        write_file (gen_pointer_file cat) (Printf.sprintf "oqf-gen %d\n" (g + 5));
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check int) "floor adopted" (g + 5)
          (Oqf_catalog.Catalog.generation reopened);
        Alcotest.(check bool) "adoption reported" true
          (warned reopened "ahead of manifest");
        (* the next commit numbers past the floor — no reuse *)
        write_file a (log_text 12);
        let (_ : Oqf_catalog.Catalog.refresh) =
          or_fail (Oqf_catalog.Catalog.refresh reopened a)
        in
        Alcotest.(check int) "next commit goes past the floor" (g + 6)
          (Oqf_catalog.Catalog.generation reopened));
    Alcotest.test_case "damaged and missing pointers are rewritten" `Quick
      (fun () ->
        let _, _, _, cat = setup_two_file_catalog () in
        let g = Oqf_catalog.Catalog.generation cat in
        write_file (gen_pointer_file cat) "junk\xff\n";
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check bool) "damage reported" true
          (warned reopened "unreadable");
        Alcotest.(check int) "generation kept" g
          (Oqf_catalog.Catalog.generation reopened);
        Sys.remove (gen_pointer_file cat);
        let reopened =
          or_fail (Oqf_catalog.Catalog.open_dir (Oqf_catalog.Catalog.dir cat))
        in
        Alcotest.(check bool) "absence reported" true
          (warned reopened "missing");
        Alcotest.(check string) "pointer rewritten"
          (Printf.sprintf "oqf-gen %d\n" g)
          (read_file (gen_pointer_file reopened)));
    Alcotest.test_case "repair collapses a stray future generation" `Quick
      (fun () ->
        let _, _, _, cat = setup_two_file_catalog () in
        let stray =
          Filename.concat
            (Filename.concat (Oqf_catalog.Catalog.dir cat) "generations")
            "MANIFEST.g99"
        in
        write_file stray
          (read_file
             (Filename.concat (Oqf_catalog.Catalog.dir cat) "CATALOG"));
        let actions = Oqf_catalog.Catalog.repair cat in
        Alcotest.(check bool) "collapse reported" true
          (List.exists
             (fun (_, a) ->
               a = Oqf_catalog.Catalog.Collapsed_generation 99)
             actions);
        Alcotest.(check bool) "stray image gone" false (Sys.file_exists stray));
    Alcotest.test_case "refresh_all continues past failing entries" `Quick
      (fun () ->
        let _, a, b, cat = setup_two_file_catalog () in
        Sys.remove a;
        let results = Oqf_catalog.Catalog.refresh_all cat in
        Alcotest.(check int) "both entries reported" 2 (List.length results);
        (match List.assoc a results with
        | Error e ->
            Alcotest.(check bool) "failure names the cause" true
              (has_substring e "source file is missing")
        | Ok _ -> Alcotest.fail "missing source must fail its refresh");
        match List.assoc b results with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "healthy entry must still refresh: %s" e);
    Alcotest.test_case "watch scan ingests appends and retires behind itself"
      `Quick (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        let g0 = Oqf_catalog.Catalog.generation cat in
        let r = Oqf_catalog.Watch.scan cat in
        Alcotest.(check int) "nothing stale: no refresh" 0
          r.Oqf_catalog.Watch.refreshed;
        write_file a (log_text 12);
        let events = ref [] in
        let r =
          Oqf_catalog.Watch.scan ~on_event:(fun e -> events := e :: !events) cat
        in
        Alcotest.(check int) "one refresh" 1 r.Oqf_catalog.Watch.refreshed;
        Alcotest.(check int) "generation advanced" (g0 + 1)
          r.Oqf_catalog.Watch.generation;
        (match !events with
        | [ Oqf_catalog.Watch.Refreshed (src, _) ] ->
            Alcotest.(check string) "event names the source" a src
        | _ -> Alcotest.fail "expected one Refreshed event");
        (* the refresh's own commit already retired the superseded
           generation inline (nothing pinned it), so the scan's sweep
           finds nothing left — either way only the current image
           remains *)
        Alcotest.(check (list int))
          "only the current generation survives"
          [ r.Oqf_catalog.Watch.generation ]
          (Oqf_catalog.Catalog.list_generations cat);
        let r = Oqf_catalog.Watch.scan cat in
        Alcotest.(check int) "steady state: no refresh" 0
          r.Oqf_catalog.Watch.refreshed);
    Alcotest.test_case "background watcher ingests while running" `Quick
      (fun () ->
        let _, a, _, cat = setup_two_file_catalog () in
        let g0 = Oqf_catalog.Catalog.generation cat in
        let lock = Mutex.create () in
        let w = Oqf_catalog.Watch.start ~interval_ms:10. ~lock cat in
        write_file a (log_text 14);
        let deadline = Unix.gettimeofday () +. 5. in
        while
          Oqf_catalog.Catalog.generation cat = g0
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.01
        done;
        Oqf_catalog.Watch.stop w;
        Alcotest.(check bool) "watcher committed the append" true
          (Oqf_catalog.Catalog.generation cat > g0));
  ]

let suites =
  [
    ("catalog.incremental", incremental_tests);
    ("catalog.index_store", index_store_tests);
    ("catalog.cache", cache_tests);
    ("catalog.catalog", catalog_tests);
    ("catalog.robustness", robustness_tests);
    ("catalog.generations", generation_tests);
  ]
