(* Tests for the mini object database: values, paths, query parsing and
   nested-loop evaluation. *)

open Odb

let v_str = Value.str
let value_t = Alcotest.testable Value.pp Value.equal

let sample_ref ~key ~authors ~editors ~year =
  Value.tuple
    [
      ("Key", v_str key);
      ( "Authors",
        Value.set
          (List.map
             (fun (f, l) ->
               Value.variant "Name"
                 (Value.tuple [ ("First_Name", v_str f); ("Last_Name", v_str l) ]))
             authors) );
      ( "Editors",
        Value.set
          (List.map
             (fun (f, l) ->
               Value.variant "Name"
                 (Value.tuple [ ("First_Name", v_str f); ("Last_Name", v_str l) ]))
             editors) );
      ("Year", v_str year);
    ]

let r1 = sample_ref ~key:"A" ~authors:[ ("Gene", "Corliss"); ("Yves", "Chang") ]
    ~editors:[ ("Andreas", "Griewank") ] ~year:"1982"

let r2 = sample_ref ~key:"B" ~authors:[ ("Tova", "Milo") ]
    ~editors:[ ("Yves", "Chang") ] ~year:"1994"

let db_with refs =
  let db = Database.create () in
  Database.insert_all db ~class_name:"References" refs;
  db

let value_tests =
  [
    Alcotest.test_case "set equality ignores order and duplicates" `Quick
      (fun () ->
        let a = Value.set [ v_str "x"; v_str "y"; v_str "x" ] in
        let b = Value.set [ v_str "y"; v_str "x" ] in
        Alcotest.check value_t "equal" a b);
    Alcotest.test_case "tuple field order matters" `Quick (fun () ->
        let a = Value.tuple [ ("a", v_str "1"); ("b", v_str "2") ] in
        let b = Value.tuple [ ("b", v_str "2"); ("a", v_str "1") ] in
        Alcotest.(check bool) "different" false (Value.equal a b));
    Alcotest.test_case "field lookup" `Quick (fun () ->
        Alcotest.(check (option value_t))
          "year" (Some (v_str "1982")) (Value.field r1 "Year");
        Alcotest.(check (option value_t)) "missing" None (Value.field r1 "Nope"));
    Alcotest.test_case "normalize sorts sets recursively" `Quick (fun () ->
        let v =
          Value.tuple
            [ ("s", Value.set [ v_str "b"; v_str "a" ]) ]
        in
        match Value.normalize v with
        | Value.Tuple [ ("s", Value.Set [ Value.Str "a"; Value.Str "b" ]) ] -> ()
        | _ -> Alcotest.fail "not normalized");
  ]

let path_tests =
  [
    Alcotest.test_case "attribute chain through sets" `Quick (fun () ->
        let got =
          Path.navigate r1
            (Path.of_strings [ "Authors"; "Name"; "Last_Name" ])
        in
        Alcotest.(check (list value_t))
          "last names"
          [ v_str "Corliss"; v_str "Chang" ]
          got);
    Alcotest.test_case "variant tag selects set elements" `Quick (fun () ->
        let got = Path.navigate r1 (Path.of_strings [ "Editors"; "Name" ]) in
        Alcotest.(check int) "one editor" 1 (List.length got));
    Alcotest.test_case "star reaches every last name" `Quick (fun () ->
        let got = Path.navigate r1 (Path.of_strings [ "*X"; "Last_Name" ]) in
        Alcotest.(check (list value_t))
          "authors then editors"
          [ v_str "Corliss"; v_str "Chang"; v_str "Griewank" ]
          got);
    Alcotest.test_case "any steps count levels" `Quick (fun () ->
        (* Authors -> Name -> Last_Name is 3 levels below the reference *)
        let got =
          Path.navigate r1 (Path.of_strings [ "X1"; "X2"; "Last_Name" ])
        in
        Alcotest.(check int) "all three last names" 3 (List.length got);
        let too_short =
          Path.navigate r1 (Path.of_strings [ "X1"; "Last_Name" ])
        in
        Alcotest.(check int) "wrong depth" 0 (List.length too_short));
    Alcotest.test_case "of_strings classification" `Quick (fun () ->
        Alcotest.(check bool)
          "star" true
          (Path.of_strings [ "*X" ] = [ Path.Star ]);
        Alcotest.(check bool)
          "any" true
          (Path.of_strings [ "X1"; "X23" ] = [ Path.Any; Path.Any ]);
        Alcotest.(check bool)
          "attr X alone is an attribute" true
          (Path.of_strings [ "X" ] = [ Path.Attr "X" ]);
        Alcotest.(check bool)
          "attr" true
          (Path.of_strings [ "Authors" ] = [ Path.Attr "Authors" ]));
    Alcotest.test_case "self-named set fields are transparent" `Quick
      (fun () ->
        (* SGML-style: a Section's [Section] field holds Section-tagged
           elements; each path step must advance one region level *)
        let leaf h =
          Value.tuple [ ("Heading", v_str h); ("Section", Value.set []) ]
        in
        let mid =
          Value.tuple
            [
              ("Heading", v_str "mid");
              ("Section", Value.set [ Value.variant "Section" (leaf "deep") ]);
            ]
        in
        let root =
          Value.tuple
            [
              ("Heading", v_str "root");
              ("Section", Value.set [ Value.variant "Section" mid ]);
            ]
        in
        Alcotest.(check (list value_t))
          "child heading" [ v_str "mid" ]
          (Path.navigate root (Path.of_strings [ "Section"; "Heading" ]));
        Alcotest.(check (list value_t))
          "grandchild heading" [ v_str "deep" ]
          (Path.navigate root
             (Path.of_strings [ "Section"; "Section"; "Heading" ])));
    Alcotest.test_case "plus step is the attribute closure" `Quick (fun () ->
        let leaf h =
          Value.tuple [ ("Heading", v_str h); ("Section", Value.set []) ]
        in
        let wrap h child =
          Value.tuple
            [
              ("Heading", v_str h);
              ("Section", Value.set [ Value.variant "Section" child ]);
            ]
        in
        let root = wrap "a" (wrap "b" (leaf "c")) in
        Alcotest.(check (list value_t))
          "all strict descendants' headings"
          [ v_str "b"; v_str "c" ]
          (Path.navigate root (Path.of_strings [ "Section+"; "Heading" ]));
        (* unlike *X, a+ does not include the start value itself *)
        Alcotest.(check int)
          "two sections" 2
          (List.length (Path.navigate root (Path.of_strings [ "Section+" ]))));
    Alcotest.test_case "of_strings parses plus components" `Quick (fun () ->
        Alcotest.(check bool)
          "plus" true
          (Path.of_strings [ "Section+" ] = [ Path.Plus "Section" ]);
        Alcotest.(check string)
          "round trip" "Section+.Heading"
          (Path.to_string (Path.of_strings [ "Section+"; "Heading" ])));
    Alcotest.test_case "missing attribute yields nothing" `Quick (fun () ->
        Alcotest.(check int) "none" 0
          (List.length (Path.navigate r1 (Path.of_strings [ "Nope"; "X" ]))));
  ]

let parser_tests =
  [
    Alcotest.test_case "parses the paper's first query" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        Alcotest.(check int) "one binding" 1 (List.length q.Query.from_);
        match q.Query.where with
        | Query.Eq_const (rp, "Chang") ->
            Alcotest.(check string) "var" "r" rp.Query.var
        | _ -> Alcotest.fail "expected an equality");
    Alcotest.test_case "keywords are case-insensitive" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|select r from References r where r.Year = "1982"|}
        in
        Alcotest.(check int) "selects" 1 (List.length q.Query.select));
    Alcotest.test_case "star and any variables" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|}
        in
        match q.Query.where with
        | Query.Eq_const (rp, _) ->
            Alcotest.(check bool)
              "star step" true
              (rp.Query.path = [ Path.Star; Path.Attr "Last_Name" ])
        | _ -> Alcotest.fail "expected an equality");
    Alcotest.test_case "join query with two bindings" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT r, s FROM References r, References s
              WHERE r.Editors.Name = s.Authors.Name|}
        in
        Alcotest.(check int) "two" 2 (List.length q.Query.from_);
        match q.Query.where with
        | Query.Eq_paths (a, b) ->
            Alcotest.(check string) "left var" "r" a.Query.var;
            Alcotest.(check string) "right var" "s" b.Query.var
        | _ -> Alcotest.fail "expected a path equality");
    Alcotest.test_case "boolean precedence: AND binds tighter" `Quick
      (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT r FROM References r
              WHERE r.Year = "1982" OR r.Year = "1994" AND r.Key = "B"|}
        in
        match q.Query.where with
        | Query.Or (_, Query.And (_, _)) -> ()
        | _ -> Alcotest.fail "wrong precedence");
    Alcotest.test_case "unbound variable rejected" `Quick (fun () ->
        match
          Query_parser.parse {|SELECT r FROM References s WHERE s.K = "x"|}
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "STARTS WITH predicate" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Key STARTS WITH "Ref00"|}
        in
        match q.Query.where with
        | Query.Starts_with (rp, "Ref00") ->
            Alcotest.(check bool)
              "path" true
              (rp.Query.path = [ Path.Attr "Key" ])
        | _ -> Alcotest.fail "expected STARTS WITH");
    Alcotest.test_case "CONTAINS predicate" `Quick (fun () ->
        let q =
          Query_parser.parse_exn
            {|SELECT e FROM Entries e WHERE e.Message CONTAINS "timeout"|}
        in
        match q.Query.where with
        | Query.Contains (_, "timeout") -> ()
        | _ -> Alcotest.fail "expected CONTAINS");
  ]

let eval_tests =
  [
    Alcotest.test_case "paper query: author named Chang" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|})
        in
        Alcotest.(check int) "only r1" 1 (List.length rows));
    Alcotest.test_case "star path finds editors too" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|})
        in
        Alcotest.(check int) "both" 2 (List.length rows));
    Alcotest.test_case "projection select" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r.Authors.Name.Last_Name FROM References r|})
        in
        Alcotest.(check int) "three distinct last names" 3 (List.length rows));
    Alcotest.test_case "self join: editor who wrote a paper" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r FROM References r, References s
                 WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name|})
        in
        (* r1's editor Griewank wrote nothing; r2's editor Chang authored r1 *)
        Alcotest.(check int) "r2 qualifies" 1 (List.length rows);
        Alcotest.(check (list value_t)) "row" [ Value.normalize r2 ]
          (List.hd rows));
    Alcotest.test_case "NOT filters" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r FROM References r WHERE NOT r.Year = "1982"|})
        in
        Alcotest.(check int) "only r2" 1 (List.length rows));
    Alcotest.test_case "AND / OR combinations" `Quick (fun () ->
        let db = db_with [ r1; r2 ] in
        let count q = List.length (Query_eval.eval db (Query_parser.parse_exn q)) in
        Alcotest.(check int) "or" 2
          (count
             {|SELECT r FROM References r WHERE r.Year = "1982" OR r.Year = "1994"|});
        Alcotest.(check int) "and" 1
          (count
             {|SELECT r FROM References r
               WHERE r.Year = "1982" AND r.Authors.Name.Last_Name = "Chang"|});
        Alcotest.(check int) "contradiction" 0
          (count
             {|SELECT r FROM References r
               WHERE r.Year = "1982" AND r.Year = "1994"|}));
    Alcotest.test_case "CONTAINS matches whole words" `Quick (fun () ->
        let db = Database.create () in
        Database.insert db ~class_name:"Docs"
          (Value.tuple [ ("Body", v_str "the catalog is flat") ]);
        let count q = List.length (Query_eval.eval db (Query_parser.parse_exn q)) in
        Alcotest.(check int) "catalog found" 1
          (count {|SELECT d FROM Docs d WHERE d.Body CONTAINS "catalog"|});
        Alcotest.(check int) "cat is not a word here" 0
          (count {|SELECT d FROM Docs d WHERE d.Body CONTAINS "cat"|}));
    Alcotest.test_case "multi-item select produces row combinations" `Quick
      (fun () ->
        let db = db_with [ r1 ] in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn
               {|SELECT r.Key, r.Authors.Name.Last_Name FROM References r|})
        in
        Alcotest.(check int) "two rows" 2 (List.length rows);
        List.iter
          (fun row -> Alcotest.(check int) "two columns" 2 (List.length row))
          rows);
    Alcotest.test_case "empty extent yields no rows" `Quick (fun () ->
        let db = Database.create () in
        let rows =
          Query_eval.eval db
            (Query_parser.parse_exn {|SELECT r FROM References r|})
        in
        Alcotest.(check int) "none" 0 (List.length rows));
  ]

let database_tests =
  [
    Alcotest.test_case "insert and extent" `Quick (fun () ->
        let db = Database.create () in
        Database.insert db ~class_name:"C" (v_str "a");
        Database.insert db ~class_name:"C" (v_str "b");
        Alcotest.(check int) "two" 2 (Database.cardinal db "C");
        Alcotest.(check (list value_t))
          "insertion order" [ v_str "a"; v_str "b" ]
          (Database.extent db "C"));
    Alcotest.test_case "objects counted in stats" `Quick (fun () ->
        let before = Stdx.Stats.(value objects_built) in
        let db = Database.create () in
        Database.insert db ~class_name:"C" (v_str "a");
        Alcotest.(check int) "one more" (before + 1)
          Stdx.Stats.(value objects_built));
    Alcotest.test_case "clear resets" `Quick (fun () ->
        let db = Database.create () in
        Database.insert db ~class_name:"C" (v_str "a");
        Database.clear db;
        Alcotest.(check int) "empty" 0 (Database.total_objects db));
  ]

let suites =
  [
    ("odb.value", value_tests);
    ("odb.path", path_tests);
    ("odb.query_parser", parser_tests);
    ("odb.query_eval", eval_tests);
    ("odb.database", database_tests);
  ]
