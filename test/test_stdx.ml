(* Unit and property tests for the stdx substrate. *)

let icmp = Int.compare

let sorted_int_list =
  QCheck.(make ~print:Print.(list int) Gen.(map (List.sort_uniq icmp) (list (int_bound 200))))

let check_sorted name f =
  QCheck.Test.make ~name ~count:300
    QCheck.(pair sorted_int_list sorted_int_list)
    f

module Iset = Set.Make (Int)

let prng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Stdx.Prng.create 42 and b = Stdx.Prng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check int64)
            "stream" (Stdx.Prng.next_int64 a) (Stdx.Prng.next_int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Stdx.Prng.create 1 and b = Stdx.Prng.create 2 in
        Alcotest.(check bool)
          "diverge" true
          (Stdx.Prng.next_int64 a <> Stdx.Prng.next_int64 b));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let t = Stdx.Prng.create 7 in
        for _ = 1 to 1000 do
          let x = Stdx.Prng.int t 13 in
          Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
        done);
    Alcotest.test_case "int_in inclusive bounds" `Quick (fun () ->
        let t = Stdx.Prng.create 7 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let x = Stdx.Prng.int_in t 3 5 in
          if x = 3 then seen_lo := true;
          if x = 5 then seen_hi := true;
          Alcotest.(check bool) "in range" true (x >= 3 && x <= 5)
        done;
        Alcotest.(check bool) "lo reached" true !seen_lo;
        Alcotest.(check bool) "hi reached" true !seen_hi);
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let t = Stdx.Prng.create 99 in
        let u = Stdx.Prng.split t in
        Alcotest.(check bool)
          "diverge" true
          (Stdx.Prng.next_int64 t <> Stdx.Prng.next_int64 u));
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let t = Stdx.Prng.create 3 in
        let a = Array.init 50 Fun.id in
        Stdx.Prng.shuffle t a;
        let sorted = Array.copy a in
        Array.sort icmp sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
    Alcotest.test_case "sample draws distinct elements" `Quick (fun () ->
        let t = Stdx.Prng.create 5 in
        let xs = List.init 20 Fun.id in
        let s = Stdx.Prng.sample t 8 xs in
        Alcotest.(check int) "size" 8 (List.length s);
        Alcotest.(check int) "distinct" 8 (Iset.cardinal (Iset.of_list s)));
  ]

let sorted_array_props =
  [
    check_sorted "union = set union" (fun (a, b) ->
        let got =
          Stdx.Sorted_array.union ~cmp:icmp (Array.of_list a) (Array.of_list b)
        in
        let want = Iset.elements (Iset.union (Iset.of_list a) (Iset.of_list b)) in
        Array.to_list got = want);
    check_sorted "inter = set inter" (fun (a, b) ->
        let got =
          Stdx.Sorted_array.inter ~cmp:icmp (Array.of_list a) (Array.of_list b)
        in
        let want = Iset.elements (Iset.inter (Iset.of_list a) (Iset.of_list b)) in
        Array.to_list got = want);
    check_sorted "diff = set diff" (fun (a, b) ->
        let got =
          Stdx.Sorted_array.diff ~cmp:icmp (Array.of_list a) (Array.of_list b)
        in
        let want = Iset.elements (Iset.diff (Iset.of_list a) (Iset.of_list b)) in
        Array.to_list got = want);
    check_sorted "subset agrees with Set.subset" (fun (a, b) ->
        Stdx.Sorted_array.subset ~cmp:icmp (Array.of_list a) (Array.of_list b)
        = Iset.subset (Iset.of_list a) (Iset.of_list b));
    QCheck.Test.make ~name:"of_list sorts and dedups" ~count:300
      QCheck.(list (int_bound 50))
      (fun xs ->
        let got = Stdx.Sorted_array.of_list ~cmp:icmp xs in
        Array.to_list got = List.sort_uniq icmp xs);
    QCheck.Test.make ~name:"lower/upper bound bracket" ~count:300
      QCheck.(pair sorted_int_list (int_bound 200))
      (fun (xs, x) ->
        let a = Array.of_list xs in
        let lo = Stdx.Sorted_array.lower_bound ~cmp:icmp a x in
        let hi = Stdx.Sorted_array.upper_bound ~cmp:icmp a x in
        lo <= hi
        && (lo = 0 || a.(lo - 1) < x)
        && (lo >= Array.length a || a.(lo) >= x)
        && (hi >= Array.length a || a.(hi) > x)
        && (hi = 0 || a.(hi - 1) <= x));
  ]

let sorted_array_units =
  [
    Alcotest.test_case "mem on empty" `Quick (fun () ->
        Alcotest.(check bool) "absent" false
          (Stdx.Sorted_array.mem ~cmp:icmp [||] 3));
    Alcotest.test_case "union with empty" `Quick (fun () ->
        let a = [| 1; 3; 5 |] in
        Alcotest.(check (array int))
          "left" a
          (Stdx.Sorted_array.union ~cmp:icmp a [||]);
        Alcotest.(check (array int))
          "right" a
          (Stdx.Sorted_array.union ~cmp:icmp [||] a));
    Alcotest.test_case "is_sorted detects disorder" `Quick (fun () ->
        Alcotest.(check bool) "ok" true
          (Stdx.Sorted_array.is_sorted ~cmp:icmp [| 1; 2; 9 |]);
        Alcotest.(check bool) "dup" false
          (Stdx.Sorted_array.is_sorted ~cmp:icmp [| 1; 1 |]);
        Alcotest.(check bool) "desc" false
          (Stdx.Sorted_array.is_sorted ~cmp:icmp [| 2; 1 |]));
  ]

let range_minmax_tests =
  let naive kind a lo hi =
    let lo = max lo 0 and hi = min hi (Array.length a - 1) in
    if lo > hi then None
    else begin
      let acc = ref a.(lo) in
      for i = lo + 1 to hi do
        acc := (match kind with `Min -> min | `Max -> max) !acc a.(i)
      done;
      Some !acc
    end
  in
  [
    QCheck.Test.make ~name:"range min matches naive" ~count:300
      QCheck.(
        triple
          (array_of_size Gen.(int_range 1 40) (int_bound 1000))
          small_nat small_nat)
      (fun (a, i, j) ->
        let t = Stdx.Range_minmax.of_array ~kind:`Min a in
        let lo = i mod Array.length a and hi = j mod Array.length a in
        Stdx.Range_minmax.query t ~lo ~hi = naive `Min a lo hi);
    QCheck.Test.make ~name:"range max matches naive" ~count:300
      QCheck.(
        triple
          (array_of_size Gen.(int_range 1 40) (int_bound 1000))
          small_nat small_nat)
      (fun (a, i, j) ->
        let t = Stdx.Range_minmax.of_array ~kind:`Max a in
        let lo = i mod Array.length a and hi = j mod Array.length a in
        Stdx.Range_minmax.query t ~lo ~hi = naive `Max a lo hi);
    QCheck.Test.make ~name:"query_excluding skips one index" ~count:300
      QCheck.(
        pair (array_of_size Gen.(int_range 2 40) (int_bound 1000)) small_nat)
      (fun (a, i) ->
        let t = Stdx.Range_minmax.of_array ~kind:`Min a in
        let n = Array.length a in
        let skip = i mod n in
        let want =
          let best = ref None in
          for j = 0 to n - 1 do
            if j <> skip then
              best :=
                Some (match !best with None -> a.(j) | Some b -> min b a.(j))
          done;
          !best
        in
        Stdx.Range_minmax.query_excluding t ~lo:0 ~hi:(n - 1) ~skip = want);
  ]

let zipf_tests =
  [
    Alcotest.test_case "samples stay in range" `Quick (fun () ->
        let z = Stdx.Zipf.create ~n:10 ~s:1.1 in
        let t = Stdx.Prng.create 11 in
        for _ = 1 to 1000 do
          let k = Stdx.Zipf.sample z t in
          Alcotest.(check bool) "range" true (k >= 0 && k < 10)
        done);
    Alcotest.test_case "rank 0 dominates under skew" `Quick (fun () ->
        let z = Stdx.Zipf.create ~n:100 ~s:1.5 in
        let t = Stdx.Prng.create 17 in
        let counts = Array.make 100 0 in
        for _ = 1 to 10000 do
          let k = Stdx.Zipf.sample z t in
          counts.(k) <- counts.(k) + 1
        done;
        Alcotest.(check bool) "head heavier than tail" true
          (counts.(0) > 10 * counts.(99)));
    Alcotest.test_case "s=0 is uniform-ish" `Quick (fun () ->
        let z = Stdx.Zipf.create ~n:4 ~s:0.0 in
        let t = Stdx.Prng.create 23 in
        let counts = Array.make 4 0 in
        for _ = 1 to 8000 do
          let k = Stdx.Zipf.sample z t in
          counts.(k) <- counts.(k) + 1
        done;
        Array.iter
          (fun c ->
            Alcotest.(check bool) "roughly 2000" true (c > 1500 && c < 2500))
          counts);
  ]

let stats_tests =
  [
    Alcotest.test_case "diff subtracts fieldwise" `Quick (fun () ->
        let a = Stdx.Stats.create () in
        a.bytes_scanned <- 10;
        a.index_ops <- 2;
        let b = Stdx.Stats.create () in
        b.bytes_scanned <- 25;
        b.index_ops <- 7;
        let d = Stdx.Stats.diff ~before:a ~after:b in
        Alcotest.(check int) "scanned" 15 d.bytes_scanned;
        Alcotest.(check int) "ops" 5 d.index_ops);
    Alcotest.test_case "reset zeroes" `Quick (fun () ->
        let a = Stdx.Stats.create () in
        a.objects_built <- 4;
        Stdx.Stats.reset a;
        Alcotest.(check int) "zero" 0 a.objects_built);
    Alcotest.test_case "add accumulates" `Quick (fun () ->
        let a = Stdx.Stats.create () and b = Stdx.Stats.create () in
        a.word_lookups <- 1;
        b.word_lookups <- 2;
        Stdx.Stats.add a b;
        Alcotest.(check int) "sum" 3 a.word_lookups);
    (* every field, all values distinct: a field dropped from diff, add
       or pp cannot hide behind an accidental collision *)
    Alcotest.test_case "diff/add/pp cover every field" `Quick (fun () ->
        let fields : (string * (Stdx.Stats.t -> int)) list =
          [
            ("bytes_scanned", fun t -> t.Stdx.Stats.bytes_scanned);
            ("bytes_parsed", fun t -> t.Stdx.Stats.bytes_parsed);
            ("index_ops", fun t -> t.Stdx.Stats.index_ops);
            ("region_comparisons", fun t -> t.Stdx.Stats.region_comparisons);
            ("word_lookups", fun t -> t.Stdx.Stats.word_lookups);
            ("objects_built", fun t -> t.Stdx.Stats.objects_built);
            ("regions_produced", fun t -> t.Stdx.Stats.regions_produced);
            ("cache_hits", fun t -> t.Stdx.Stats.cache_hits);
            ("cache_misses", fun t -> t.Stdx.Stats.cache_misses);
            ("cache_evictions", fun t -> t.Stdx.Stats.cache_evictions);
          ]
        in
        let before =
          {
            Stdx.Stats.bytes_scanned = 1;
            bytes_parsed = 2;
            index_ops = 3;
            region_comparisons = 4;
            word_lookups = 5;
            objects_built = 6;
            regions_produced = 7;
            cache_hits = 8;
            cache_misses = 9;
            cache_evictions = 10;
          }
        in
        let after =
          {
            Stdx.Stats.bytes_scanned = 101;
            bytes_parsed = 203;
            index_ops = 305;
            region_comparisons = 407;
            word_lookups = 509;
            objects_built = 611;
            regions_produced = 713;
            cache_hits = 815;
            cache_misses = 917;
            cache_evictions = 1019;
          }
        in
        let d = Stdx.Stats.diff ~before ~after in
        List.iter
          (fun (name, get) ->
            Alcotest.(check int) ("diff " ^ name) (get after - get before) (get d))
          fields;
        (* deltas are pairwise distinct, so a crossed wire would show *)
        let deltas = List.map (fun (_, get) -> get d) fields in
        Alcotest.(check int) "all deltas distinct"
          (List.length deltas)
          (List.length (List.sort_uniq compare deltas));
        let acc =
          {
            before with Stdx.Stats.bytes_scanned = before.Stdx.Stats.bytes_scanned;
          }
        in
        Stdx.Stats.add acc d;
        List.iter
          (fun (name, get) ->
            Alcotest.(check int) ("add " ^ name) (get after) (get acc))
          fields;
        let contains haystack needle =
          let nh = String.length haystack and nn = String.length needle in
          let rec go i =
            if i + nn > nh then false
            else String.sub haystack i nn = needle || go (i + 1)
          in
          go 0
        in
        let rendered = Format.asprintf "%a" Stdx.Stats.pp d in
        List.iter
          (fun fragment ->
            if not (contains rendered fragment) then
              Alcotest.failf "pp output %S misses %S" rendered fragment)
          [
            "scanned=100B"; "parsed=201B"; "index_ops=302"; "cmps=403";
            "lookups=504"; "objs=605"; "regions=706"; "cache=807h/908m/1009e";
          ]);
    Alcotest.test_case "snapshot reads the registry counters" `Quick
      (fun () ->
        let s0 = Stdx.Stats.snapshot () in
        Stdx.Stats.(incr index_ops);
        Stdx.Stats.(add_to bytes_scanned 17);
        let s1 = Stdx.Stats.snapshot () in
        let d = Stdx.Stats.diff ~before:s0 ~after:s1 in
        Alcotest.(check int) "index_ops" 1 d.Stdx.Stats.index_ops;
        Alcotest.(check int) "bytes_scanned" 17 d.Stdx.Stats.bytes_scanned);
  ]

(* --- fault injection and retry ------------------------------------- *)

let with_faults spec f =
  match Stdx.Fault.parse spec with
  | Error e -> Alcotest.failf "fault spec %S rejected: %s" spec e
  | Ok config ->
      Stdx.Fault.set (Some config);
      Fun.protect ~finally:(fun () -> Stdx.Fault.set None) f

(* how many of [n] visits to [site] inject, resetting nothing *)
let injected_count site n =
  let hits = ref 0 in
  for _ = 1 to n do
    match Stdx.Fault.hit site with
    | () -> ()
    | exception Stdx.Fault.Injected _ -> incr hits
  done;
  !hits

let fault_tests =
  [
    Alcotest.test_case "parse rejects malformed directives" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Stdx.Fault.parse spec with
            | Ok _ -> Alcotest.failf "spec %S should not parse" spec
            | Error _ -> ())
          [
            ""; "transient"; "transient:nope"; "transient:1.5"; "bogus:1";
            "crash:site"; "delay:0.5"; "burst:0"; "seed:x";
          ]);
    Alcotest.test_case "parse accepts the documented forms" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Stdx.Fault.parse spec with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "spec %S rejected: %s" spec e)
          [
            "transient:0.05,seed:42"; "permanent:1.0,only:pool.task";
            "corrupt:0.1,burst:2"; "delay:0.5@3"; "crash:catalog.write@1";
          ]);
    Alcotest.test_case "equal seeds replay equal schedules" `Quick (fun () ->
        let run () =
          with_faults "transient:0.3,seed:9" (fun () -> injected_count "t.site" 200)
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "some injections" true (a > 0 && a < 200);
        Alcotest.(check int) "replayed" a b);
    Alcotest.test_case "burst caps consecutive injections" `Quick (fun () ->
        with_faults "transient:1.0,burst:2,seed:1" (fun () ->
            (* p=1 without the cap would inject every visit; with
               burst:2 every third visit must get through *)
            let consec = ref 0 and worst = ref 0 in
            for _ = 1 to 50 do
              match Stdx.Fault.hit "t.burst" with
              | () -> consec := 0
              | exception Stdx.Fault.Injected _ ->
                  incr consec;
                  if !consec > !worst then worst := !consec
            done;
            Alcotest.(check int) "longest run" 2 !worst));
    Alcotest.test_case "only: restricts the site" `Quick (fun () ->
        with_faults "permanent:1.0,only:t.a" (fun () ->
            Alcotest.(check int) "other site clean" 0 (injected_count "t.b" 50);
            Alcotest.(check bool) "named site injects" true
              (injected_count "t.a" 5 > 0)));
    Alcotest.test_case "corrupting flips one byte under corrupt:1" `Quick
      (fun () ->
        let payload = String.make 64 'x' in
        with_faults "corrupt:1.0" (fun () ->
            let damaged = Stdx.Fault.corrupting "t.c" payload in
            Alcotest.(check bool) "changed" true (damaged <> payload);
            Alcotest.(check int) "same length" (String.length payload)
              (String.length damaged));
        Alcotest.(check string) "disabled is identity" payload
          (Stdx.Fault.corrupting "t.c" payload));
  ]

let quick_policy =
  { Stdx.Retry.attempts = 4; base_delay_ms = 0.01; max_delay_ms = 0.05 }

let retry_tests =
  [
    Alcotest.test_case "classify_exn follows the taxonomy" `Quick (fun () ->
        let k = Stdx.Retry.classify_exn in
        Alcotest.(check bool) "injected transient" true
          (k (Stdx.Fault.Injected { site = "s"; kind = Stdx.Fault.Transient })
          = Stdx.Fault.Transient);
        Alcotest.(check bool) "injected corruption" true
          (k (Stdx.Fault.Injected { site = "s"; kind = Stdx.Fault.Corruption })
          = Stdx.Fault.Corruption);
        Alcotest.(check bool) "sys_error transient" true
          (k (Sys_error "eintr") = Stdx.Fault.Transient);
        Alcotest.(check bool) "anything else permanent" true
          (k (Failure "boom") = Stdx.Fault.Permanent));
    Alcotest.test_case "io masks transients within the budget" `Quick
      (fun () ->
        with_faults "transient:1.0,burst:2,seed:3" (fun () ->
            let calls = ref 0 in
            let v =
              Stdx.Retry.io ~policy:quick_policy ~site:"t.retry" (fun () ->
                  incr calls;
                  Stdx.Fault.hit "t.retry";
                  41 + 1)
            in
            Alcotest.(check int) "value" 42 v;
            Alcotest.(check int) "third try got through" 3 !calls));
    Alcotest.test_case "io re-raises once the budget is spent" `Quick
      (fun () ->
        with_faults "transient:1.0,seed:3" (fun () ->
            let calls = ref 0 in
            match
              Stdx.Retry.io ~policy:quick_policy ~site:"t.spent" (fun () ->
                  incr calls;
                  Stdx.Fault.hit "t.spent")
            with
            | () -> Alcotest.fail "should have raised"
            | exception Stdx.Fault.Injected _ ->
                Alcotest.(check int) "all attempts used"
                  quick_policy.Stdx.Retry.attempts !calls));
    Alcotest.test_case "io does not retry permanent failures" `Quick
      (fun () ->
        with_faults "permanent:1.0,seed:3" (fun () ->
            let calls = ref 0 in
            match
              Stdx.Retry.io ~policy:quick_policy ~site:"t.perm" (fun () ->
                  incr calls;
                  Stdx.Fault.hit "t.perm")
            with
            | () -> Alcotest.fail "should have raised"
            | exception Stdx.Fault.Injected _ ->
                Alcotest.(check int) "single attempt" 1 !calls));
    Alcotest.test_case "backoff schedule has the decorrelated shape" `Quick
      (fun () ->
        let policy =
          { Stdx.Retry.attempts = 6; base_delay_ms = 1.0; max_delay_ms = 8.0 }
        in
        let delays = Stdx.Retry.backoff_schedule ~policy "t.shape" in
        Alcotest.(check int) "one sleep per retry" 5 (List.length delays);
        let prev = ref policy.Stdx.Retry.base_delay_ms in
        List.iter
          (fun d ->
            let hi = Float.min policy.Stdx.Retry.max_delay_ms (3.0 *. !prev) in
            if d < policy.Stdx.Retry.base_delay_ms || d > hi then
              Alcotest.failf "delay %.3f outside [%.3f, %.3f]" d
                policy.Stdx.Retry.base_delay_ms hi;
            prev := d)
          delays;
        Alcotest.(check (list (float 0.)))
          "reproducible" delays
          (Stdx.Retry.backoff_schedule ~policy "t.shape"));
    Alcotest.test_case "breaker opens at the threshold and resets" `Quick
      (fun () ->
        Stdx.Retry.Breaker.reset_all ();
        Fun.protect ~finally:Stdx.Retry.Breaker.reset_all (fun () ->
            let key = "t.breaker" in
            for _ = 1 to Stdx.Retry.Breaker.threshold - 1 do
              Stdx.Retry.Breaker.failure key
            done;
            Alcotest.(check bool) "still closed" true
              (Stdx.Retry.Breaker.state key = Stdx.Retry.Breaker.Closed);
            Stdx.Retry.Breaker.failure key;
            Alcotest.(check bool) "open" true
              (Stdx.Retry.Breaker.state key = Stdx.Retry.Breaker.Open);
            Stdx.Retry.Breaker.success key;
            Alcotest.(check bool) "success closes" true
              (Stdx.Retry.Breaker.state key = Stdx.Retry.Breaker.Closed)));
    Alcotest.test_case "breaker transitions drive the breaker.state gauge"
      `Quick (fun () ->
        Stdx.Retry.Breaker.reset_all ();
        Fun.protect ~finally:Stdx.Retry.Breaker.reset_all (fun () ->
            let key = "t.gauge" in
            let gauge =
              Obs.Metrics.counter
                (Obs.Label.render "breaker.state" [ ("source", key) ])
            in
            (* failures below the threshold never mint a 1 *)
            for _ = 1 to Stdx.Retry.Breaker.threshold - 1 do
              Stdx.Retry.Breaker.failure key
            done;
            Alcotest.(check int) "closed reads 0" 0 (Obs.Metrics.value gauge);
            Stdx.Retry.Breaker.failure key;
            Alcotest.(check int) "open reads 1" 1 (Obs.Metrics.value gauge);
            Stdx.Retry.Breaker.success key;
            Alcotest.(check int) "close resets to 0" 0
              (Obs.Metrics.value gauge)));
  ]

let suites =
  [
    ("stdx.prng", prng_tests);
    ( "stdx.sorted_array",
      sorted_array_units @ List.map QCheck_alcotest.to_alcotest sorted_array_props
    );
    ("stdx.range_minmax", List.map QCheck_alcotest.to_alcotest range_minmax_tests);
    ("stdx.zipf", zipf_tests);
    ("stdx.stats", stats_tests);
    ("stdx.fault", fault_tests);
    ("stdx.retry", retry_tests);
  ]
