(* The observability layer: metrics registry, span tracer, sinks. *)

let with_memory_sink f =
  let sink, roots = Obs.Sink.memory () in
  Obs.Trace.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_sink None)
    (fun () ->
      f ();
      roots ())

let metrics_tests =
  [
    Alcotest.test_case "counter is create-or-get by name" `Quick (fun () ->
        let a = Obs.Metrics.counter "test.m1" in
        let b = Obs.Metrics.counter "test.m1" in
        let v0 = Obs.Metrics.value a in
        Obs.Metrics.incr a;
        Obs.Metrics.add_to b 4;
        Alcotest.(check int) "same cell" (v0 + 5) (Obs.Metrics.value a);
        Alcotest.(check int) "named read" (v0 + 5)
          (Obs.Metrics.value (Obs.Metrics.counter "test.m1")));
    Alcotest.test_case "find_counter does not create" `Quick (fun () ->
        Alcotest.(check bool)
          "absent" true
          (Obs.Metrics.find_counter "test.never_created" = None);
        let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.created" in
        Alcotest.(check bool)
          "present" true
          (Obs.Metrics.find_counter "test.created" <> None));
    Alcotest.test_case "counters listing includes registered names" `Quick
      (fun () ->
        let c = Obs.Metrics.counter "test.listing" in
        Obs.Metrics.set c 42;
        Alcotest.(check bool)
          "listed" true
          (List.mem ("test.listing", 42) (Obs.Metrics.counters ())));
    Alcotest.test_case "histogram nearest-rank percentiles" `Quick (fun () ->
        let h = Obs.Metrics.histogram "test.h1" in
        (* observe 1..100 shuffled deterministically *)
        let prng = Stdx.Prng.create 99 in
        let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
        for i = 99 downto 1 do
          let j = Stdx.Prng.int prng (i + 1) in
          let t = xs.(i) in
          xs.(i) <- xs.(j);
          xs.(j) <- t
        done;
        Array.iter (Obs.Metrics.observe h) xs;
        match Obs.Metrics.summarize h with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
            Alcotest.(check (float 0.001)) "sum" 5050.0 s.Obs.Metrics.sum;
            Alcotest.(check (float 0.001)) "p50" 50.0 s.Obs.Metrics.p50;
            Alcotest.(check (float 0.001)) "p95" 95.0 s.Obs.Metrics.p95;
            Alcotest.(check (float 0.001)) "p99" 99.0 s.Obs.Metrics.p99;
            Alcotest.(check (float 0.001)) "max" 100.0 s.Obs.Metrics.max);
    Alcotest.test_case "empty histogram has no summary" `Quick (fun () ->
        Alcotest.(check bool)
          "none" true
          (Obs.Metrics.summarize (Obs.Metrics.histogram "test.empty") = None));
  ]

let trace_tests =
  [
    Alcotest.test_case "disabled tracing is inert" `Quick (fun () ->
        Obs.Trace.set_sink None;
        Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
        (* no sink: spans are the shared null handle, nothing blows up *)
        let s = Obs.Trace.begin_span "nothing" in
        Obs.Trace.instant "nothing.instant";
        Obs.Trace.end_span s;
        Alcotest.(check bool)
          "with_span passes through" true
          (Obs.Trace.with_span "nothing" (fun () -> true)));
    Alcotest.test_case "span nesting reconstructs as a tree" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              Obs.Trace.with_span "root" (fun () ->
                  Obs.Trace.with_span "child_a" (fun () ->
                      Obs.Trace.instant "tick");
                  Obs.Trace.with_span "child_b" ignore))
        in
        match roots with
        | [ root ] ->
            Alcotest.(check string) "root" "root" root.Obs.Sink.name;
            Alcotest.(check (list string))
              "children in opening order" [ "child_a"; "child_b" ]
              (List.map (fun n -> n.Obs.Sink.name) root.Obs.Sink.children);
            let a = List.hd root.Obs.Sink.children in
            Alcotest.(check (list string))
              "instant recorded" [ "tick" ]
              (List.map (fun (n, _, _) -> n) a.Obs.Sink.events)
        | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
    Alcotest.test_case "end_span attrs land on the span" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              let s = Obs.Trace.begin_span "work" in
              Obs.Trace.end_span s ~attrs:[ ("out", Obs.Trace.Int 7) ])
        in
        match roots with
        | [ n ] ->
            Alcotest.(check bool)
              "attr present" true
              (List.mem_assoc "out" n.Obs.Sink.attrs)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "unclosed descendants are closed with the parent"
      `Quick
      (fun () ->
        let roots =
          with_memory_sink (fun () ->
              let outer = Obs.Trace.begin_span "outer" in
              let (_ : Obs.Trace.span) = Obs.Trace.begin_span "leaked" in
              Obs.Trace.end_span outer)
        in
        match roots with
        | [ outer ] ->
            Alcotest.(check (list string))
              "leaked child present" [ "leaked" ]
              (List.map (fun n -> n.Obs.Sink.name) outer.Obs.Sink.children)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "with_span is exception-safe" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              try
                Obs.Trace.with_span "boom" (fun () -> failwith "inner")
              with Failure _ -> ())
        in
        Alcotest.(check (list string))
          "span closed" [ "boom" ]
          (List.map (fun n -> n.Obs.Sink.name) roots));
    Alcotest.test_case "pretty sink renders the forest on flush" `Quick
      (fun () ->
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Obs.Trace.set_sink (Some (Obs.Sink.pretty ppf));
        Obs.Trace.with_span "alpha" (fun () ->
            Obs.Trace.with_span "beta" ignore);
        Obs.Trace.set_sink None;
        Format.pp_print_flush ppf ();
        let out = Buffer.contents buf in
        Alcotest.(check bool)
          "mentions both spans" true
          (let has needle =
             let nh = String.length out and nn = String.length needle in
             let rec go i =
               if i + nn > nh then false
               else String.sub out i nn = needle || go (i + 1)
             in
             go 0
           in
           has "alpha" && has "beta"));
  ]

let sink_file_tests =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let trace_to sink_of_oc path =
    let oc = open_out path in
    Obs.Trace.set_sink (Some (sink_of_oc oc));
    Obs.Trace.with_span "query" (fun () ->
        Obs.Trace.instant "cache.hit" ~attrs:[ ("key", Obs.Trace.Str "k\"1") ];
        Obs.Trace.with_span "eval" ignore);
    Obs.Trace.set_sink None;
    close_out oc;
    read_all path
  in
  [
    Alcotest.test_case "jsonl writes one object per event line" `Quick
      (fun () ->
        let path = Filename.temp_file "obs_test" ".jsonl" in
        let out = trace_to Obs.Sink.jsonl path in
        Sys.remove path;
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
        in
        (* begin(query) instant(cache.hit) begin(eval) end(eval) end(query) *)
        Alcotest.(check int) "five events" 5 (List.length lines);
        List.iter
          (fun l ->
            Alcotest.(check bool) "looks like an object" true
              (String.length l > 1 && l.[0] = '{'))
          lines);
    Alcotest.test_case "chrome trace is a well-bracketed array" `Quick
      (fun () ->
        let path = Filename.temp_file "obs_test" ".json" in
        let out = trace_to Obs.Sink.chrome path in
        Sys.remove path;
        let trimmed = String.trim out in
        Alcotest.(check bool) "starts with [" true (trimmed.[0] = '[');
        Alcotest.(check bool)
          "ends with ]" true
          (trimmed.[String.length trimmed - 1] = ']');
        let count needle =
          let nh = String.length out and nn = String.length needle in
          let rec go i acc =
            if i + nn > nh then acc
            else
              go (i + 1) (if String.sub out i nn = needle then acc + 1 else acc)
          in
          go 0 0
        in
        Alcotest.(check int) "two begins" 2 (count {|"ph":"B"|});
        Alcotest.(check int) "two ends" 2 (count {|"ph":"E"|});
        Alcotest.(check int) "one instant" 1 (count {|"ph":"i"|});
        (* the quote inside the attr value must have been escaped *)
        Alcotest.(check bool) "escaped quote" true (count {|k\"1|} = 1));
  ]

let suites =
  [
    ("obs.metrics", metrics_tests);
    ("obs.trace", trace_tests);
    ("obs.sinks", sink_file_tests);
  ]
