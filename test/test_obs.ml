(* The observability layer: metrics registry, span tracer, sinks. *)

let with_memory_sink f =
  let sink, roots = Obs.Sink.memory () in
  Obs.Trace.set_sink (Some sink);
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_sink None)
    (fun () ->
      f ();
      roots ())

let metrics_tests =
  [
    Alcotest.test_case "counter is create-or-get by name" `Quick (fun () ->
        let a = Obs.Metrics.counter "test.m1" in
        let b = Obs.Metrics.counter "test.m1" in
        let v0 = Obs.Metrics.value a in
        Obs.Metrics.incr a;
        Obs.Metrics.add_to b 4;
        Alcotest.(check int) "same cell" (v0 + 5) (Obs.Metrics.value a);
        Alcotest.(check int) "named read" (v0 + 5)
          (Obs.Metrics.value (Obs.Metrics.counter "test.m1")));
    Alcotest.test_case "find_counter does not create" `Quick (fun () ->
        Alcotest.(check bool)
          "absent" true
          (Obs.Metrics.find_counter "test.never_created" = None);
        let (_ : Obs.Metrics.counter) = Obs.Metrics.counter "test.created" in
        Alcotest.(check bool)
          "present" true
          (Obs.Metrics.find_counter "test.created" <> None));
    Alcotest.test_case "counters listing includes registered names" `Quick
      (fun () ->
        let c = Obs.Metrics.counter "test.listing" in
        Obs.Metrics.set c 42;
        Alcotest.(check bool)
          "listed" true
          (List.mem ("test.listing", 42) (Obs.Metrics.counters ())));
    Alcotest.test_case "histogram nearest-rank percentiles" `Quick (fun () ->
        let h = Obs.Metrics.histogram "test.h1" in
        (* observe 1..100 shuffled deterministically *)
        let prng = Stdx.Prng.create 99 in
        let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
        for i = 99 downto 1 do
          let j = Stdx.Prng.int prng (i + 1) in
          let t = xs.(i) in
          xs.(i) <- xs.(j);
          xs.(j) <- t
        done;
        Array.iter (Obs.Metrics.observe h) xs;
        match Obs.Metrics.summarize h with
        | None -> Alcotest.fail "expected a summary"
        | Some s ->
            Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
            Alcotest.(check (float 0.001)) "sum" 5050.0 s.Obs.Metrics.sum;
            Alcotest.(check (float 0.001)) "p50" 50.0 s.Obs.Metrics.p50;
            Alcotest.(check (float 0.001)) "p95" 95.0 s.Obs.Metrics.p95;
            Alcotest.(check (float 0.001)) "p99" 99.0 s.Obs.Metrics.p99;
            Alcotest.(check (float 0.001)) "max" 100.0 s.Obs.Metrics.max);
    Alcotest.test_case "empty histogram has no summary" `Quick (fun () ->
        Alcotest.(check bool)
          "none" true
          (Obs.Metrics.summarize (Obs.Metrics.histogram "test.empty") = None));
  ]

let trace_tests =
  [
    Alcotest.test_case "disabled tracing is inert" `Quick (fun () ->
        Obs.Trace.set_sink None;
        Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
        (* no sink: spans are the shared null handle, nothing blows up *)
        let s = Obs.Trace.begin_span "nothing" in
        Obs.Trace.instant "nothing.instant";
        Obs.Trace.end_span s;
        Alcotest.(check bool)
          "with_span passes through" true
          (Obs.Trace.with_span "nothing" (fun () -> true)));
    Alcotest.test_case "span nesting reconstructs as a tree" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              Obs.Trace.with_span "root" (fun () ->
                  Obs.Trace.with_span "child_a" (fun () ->
                      Obs.Trace.instant "tick");
                  Obs.Trace.with_span "child_b" ignore))
        in
        match roots with
        | [ root ] ->
            Alcotest.(check string) "root" "root" root.Obs.Sink.name;
            Alcotest.(check (list string))
              "children in opening order" [ "child_a"; "child_b" ]
              (List.map (fun n -> n.Obs.Sink.name) root.Obs.Sink.children);
            let a = List.hd root.Obs.Sink.children in
            Alcotest.(check (list string))
              "instant recorded" [ "tick" ]
              (List.map (fun (n, _, _) -> n) a.Obs.Sink.events)
        | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
    Alcotest.test_case "end_span attrs land on the span" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              let s = Obs.Trace.begin_span "work" in
              Obs.Trace.end_span s ~attrs:[ ("out", Obs.Trace.Int 7) ])
        in
        match roots with
        | [ n ] ->
            Alcotest.(check bool)
              "attr present" true
              (List.mem_assoc "out" n.Obs.Sink.attrs)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "unclosed descendants are closed with the parent"
      `Quick
      (fun () ->
        let roots =
          with_memory_sink (fun () ->
              let outer = Obs.Trace.begin_span "outer" in
              let (_ : Obs.Trace.span) = Obs.Trace.begin_span "leaked" in
              Obs.Trace.end_span outer)
        in
        match roots with
        | [ outer ] ->
            Alcotest.(check (list string))
              "leaked child present" [ "leaked" ]
              (List.map (fun n -> n.Obs.Sink.name) outer.Obs.Sink.children)
        | _ -> Alcotest.fail "expected one root");
    Alcotest.test_case "with_span is exception-safe" `Quick (fun () ->
        let roots =
          with_memory_sink (fun () ->
              try
                Obs.Trace.with_span "boom" (fun () -> failwith "inner")
              with Failure _ -> ())
        in
        Alcotest.(check (list string))
          "span closed" [ "boom" ]
          (List.map (fun n -> n.Obs.Sink.name) roots));
    Alcotest.test_case "pretty sink renders the forest on flush" `Quick
      (fun () ->
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Obs.Trace.set_sink (Some (Obs.Sink.pretty ppf));
        Obs.Trace.with_span "alpha" (fun () ->
            Obs.Trace.with_span "beta" ignore);
        Obs.Trace.set_sink None;
        Format.pp_print_flush ppf ();
        let out = Buffer.contents buf in
        Alcotest.(check bool)
          "mentions both spans" true
          (let has needle =
             let nh = String.length out and nn = String.length needle in
             let rec go i =
               if i + nn > nh then false
               else String.sub out i nn = needle || go (i + 1)
             in
             go 0
           in
           has "alpha" && has "beta"));
  ]

let sink_file_tests =
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let trace_to sink_of_oc path =
    let oc = open_out path in
    Obs.Trace.set_sink (Some (sink_of_oc oc));
    Obs.Trace.with_span "query" (fun () ->
        Obs.Trace.instant "cache.hit" ~attrs:[ ("key", Obs.Trace.Str "k\"1") ];
        Obs.Trace.with_span "eval" ignore);
    Obs.Trace.set_sink None;
    close_out oc;
    read_all path
  in
  [
    Alcotest.test_case "jsonl writes one object per event line" `Quick
      (fun () ->
        let path = Filename.temp_file "obs_test" ".jsonl" in
        let out = trace_to Obs.Sink.jsonl path in
        Sys.remove path;
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
        in
        (* begin(query) instant(cache.hit) begin(eval) end(eval) end(query) *)
        Alcotest.(check int) "five events" 5 (List.length lines);
        List.iter
          (fun l ->
            Alcotest.(check bool) "looks like an object" true
              (String.length l > 1 && l.[0] = '{'))
          lines);
    Alcotest.test_case "chrome trace is a well-bracketed array" `Quick
      (fun () ->
        let path = Filename.temp_file "obs_test" ".json" in
        let out = trace_to Obs.Sink.chrome path in
        Sys.remove path;
        let trimmed = String.trim out in
        Alcotest.(check bool) "starts with [" true (trimmed.[0] = '[');
        Alcotest.(check bool)
          "ends with ]" true
          (trimmed.[String.length trimmed - 1] = ']');
        let count needle =
          let nh = String.length out and nn = String.length needle in
          let rec go i acc =
            if i + nn > nh then acc
            else
              go (i + 1) (if String.sub out i nn = needle then acc + 1 else acc)
          in
          go 0 0
        in
        Alcotest.(check int) "two begins" 2 (count {|"ph":"B"|});
        Alcotest.(check int) "two ends" 2 (count {|"ph":"E"|});
        Alcotest.(check int) "one instant" 1 (count {|"ph":"i"|});
        (* the quote inside the attr value must have been escaped *)
        Alcotest.(check bool) "escaped quote" true (count {|k\"1|} = 1));
  ]

(* ---------------- label hygiene ---------------- *)

let label_tests =
  [
    Alcotest.test_case "hostile value round-trips through render/parse"
      `Quick (fun () ->
        let hostile = "a\"b,c\nd\\e" in
        let name = Obs.Label.render "m" [ ("workload", hostile) ] in
        let base, labels = Obs.Label.parse name in
        Alcotest.(check string) "base" "m" base;
        (* the newline was sanitized away; quote/comma/backslash kept *)
        Alcotest.(check (list (pair string string)))
          "labels" [ ("workload", "a\"b,c_d\\e") ] labels);
    Alcotest.test_case "keys are flattened to identifiers" `Quick (fun () ->
        let name = Obs.Label.render "m" [ ("bad key!", "v") ] in
        let _, labels = Obs.Label.parse name in
        Alcotest.(check (list (pair string string)))
          "key sanitized" [ ("bad_key_", "v") ] labels);
    Alcotest.test_case "label order does not change the rendered name"
      `Quick (fun () ->
        Alcotest.(check string)
          "sorted"
          (Obs.Label.render "m" [ ("a", "1"); ("b", "2") ])
          (Obs.Label.render "m" [ ("b", "2"); ("a", "1") ]));
    Alcotest.test_case "legacy unquoted form still parses" `Quick (fun () ->
        let base, labels =
          Obs.Label.parse "query.latency_ms{workload=bibtex}"
        in
        Alcotest.(check string) "base" "query.latency_ms" base;
        Alcotest.(check (list (pair string string)))
          "labels" [ ("workload", "bibtex") ] labels);
    Alcotest.test_case "empty value survives as a placeholder" `Quick
      (fun () ->
        Alcotest.(check string) "placeholder" "_" (Obs.Label.sanitize ""));
  ]

(* ---------------- the durable query log ---------------- *)

let tmpdir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "oqf_qlog_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Sys.mkdir d 0o700 with Sys_error _ -> ());
    d

let mk_record ?(trace = "t1") ?(workload = "w") ?(ms = 1.0) ?(cached = false)
    ?(outcome = "ok") ?error ?(events = []) ?(retries = 0) ?(faults = 0) query
    =
  Obs.Qlog.make
    ~ctx:{ Obs.Qlog.trace_id = trace; workload }
    ~workload_default:"default" ~schema:"log" ~kind:"query" ~query
    ~latency_ms:ms ~rows:3 ~cached ~shards:2 ~outcome ?error ~events ~retries
    ~faults ()

let qlog_tests =
  [
    Alcotest.test_case "record round-trips through its JSON line" `Quick
      (fun () ->
        let r =
          mk_record ~trace:"q1-2-3" ~ms:12.5 ~cached:true ~outcome:"degraded"
            ~error:"partial \"quoted\""
            ~events:[ ("naive-fallback", "a.log") ]
            ~retries:2 ~faults:1
            {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|}
        in
        match Obs.Qlog.record_of_json (Obs.Qlog.record_to_json r) with
        | None -> Alcotest.fail "did not parse back"
        | Some r' ->
            Alcotest.(check string) "trace" r.trace_id r'.Obs.Qlog.trace_id;
            Alcotest.(check string) "query" r.query r'.query;
            Alcotest.(check string) "outcome" r.outcome r'.outcome;
            Alcotest.(check (option string)) "error" r.error r'.error;
            Alcotest.(check int) "retries" r.retries r'.retries;
            Alcotest.(check int) "faults" r.faults r'.faults;
            Alcotest.(check (list (pair string string)))
              "events" r.events r'.events);
    Alcotest.test_case "append + fold round-trips; torn tail is skipped"
      `Quick (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let log = Result.get_ok (Obs.Qlog.open_log path) in
        Obs.Qlog.append log (mk_record ~trace:"a" "SELECT 1");
        Obs.Qlog.append log (mk_record ~trace:"b" "SELECT 2");
        Obs.Qlog.close log;
        (* simulate a crash mid-write: a torn, unterminated final line *)
        let oc =
          open_out_gen [ Open_append; Open_wronly ] 0o644 path
        in
        output_string oc {|{"ts":12,"trace":"torn|};
        close_out oc;
        let traces, skipped =
          Result.get_ok
            (Obs.Qlog.fold path ~init:[] ~f:(fun acc r ->
                 r.Obs.Qlog.trace_id :: acc))
        in
        Alcotest.(check (list string)) "records survive" [ "b"; "a" ] traces;
        Alcotest.(check int) "torn tail counted, not fatal" 1 skipped);
    Alcotest.test_case "size-based rotation keeps bounded segments" `Quick
      (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let log =
          Result.get_ok (Obs.Qlog.open_log ~max_bytes:4096 ~keep:2 path)
        in
        for i = 1 to 60 do
          Obs.Qlog.append log
            (mk_record ~trace:(Printf.sprintf "t%d" i)
               "SELECT e.Service FROM Entries e ORDER BY padding-padding")
        done;
        Obs.Qlog.close log;
        Alcotest.(check bool) "rotated segment exists" true
          (Sys.file_exists (path ^ ".1"));
        Alcotest.(check bool) "keep bound respected" false
          (Sys.file_exists (path ^ ".3"));
        (* no record was lost across the rotation boundary *)
        let count p =
          match Obs.Qlog.fold p ~init:0 ~f:(fun n _ -> n + 1) with
          | Ok (n, 0) -> n
          | Ok (_, k) -> Alcotest.failf "%d skipped lines in %s" k p
          | Error e -> Alcotest.fail e
        in
        let segments =
          List.filter Sys.file_exists [ path; path ^ ".1"; path ^ ".2" ]
        in
        let total = List.fold_left (fun n p -> n + count p) 0 segments in
        Alcotest.(check int) "all records durable" 60 total);
    Alcotest.test_case "a failing write drops the record, never raises"
      `Quick (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let arm = ref false in
        let io_hook site =
          if !arm && site = "qlog.write" then failwith "injected"
        in
        let log = Result.get_ok (Obs.Qlog.open_log ~io_hook path) in
        let dropped () =
          match Obs.Metrics.find_counter "qlog.dropped" with
          | Some c -> Obs.Metrics.value c
          | None -> 0
        in
        let before = dropped () in
        Obs.Qlog.append log (mk_record "SELECT ok");
        arm := true;
        Obs.Qlog.append log (mk_record "SELECT lost");
        arm := false;
        Obs.Qlog.close log;
        Alcotest.(check int) "one drop counted" (before + 1) (dropped ());
        let n, _ =
          Result.get_ok (Obs.Qlog.fold path ~init:0 ~f:(fun n _ -> n + 1))
        in
        Alcotest.(check int) "only the healthy record landed" 1 n);
    Alcotest.test_case "slow records are mirrored to the sibling log" `Quick
      (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let log =
          Result.get_ok (Obs.Qlog.open_log ~slow_ms:10.0 path)
        in
        Obs.Qlog.append log (mk_record ~trace:"fast" ~ms:1.0 "SELECT 1");
        Obs.Qlog.append log (mk_record ~trace:"slow" ~ms:50.0 "SELECT 2");
        Obs.Qlog.close log;
        let traces, _ =
          Result.get_ok
            (Obs.Qlog.fold (Obs.Qlog.slow_path log) ~init:[]
               ~f:(fun acc r -> r.Obs.Qlog.trace_id :: acc))
        in
        Alcotest.(check (list string))
          "only the slow one, same trace id" [ "slow" ] traces);
  ]

(* ---------------- qlog aggregation ---------------- *)

let qstats_tests =
  [
    Alcotest.test_case "percentiles are nearest-rank over all records"
      `Quick (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let log = Result.get_ok (Obs.Qlog.open_log path) in
        for i = 1 to 100 do
          Obs.Qlog.append log
            (mk_record ~workload:"w" ~ms:(float_of_int i)
               (Printf.sprintf "SELECT %d" ((i mod 3) + 1)))
        done;
        Obs.Qlog.close log;
        let s = Result.get_ok (Obs.Qstats.of_files ~top:2 [ path ]) in
        Alcotest.(check int) "records" 100 s.Obs.Qstats.records;
        Alcotest.(check int) "one workload" 1 (List.length s.workloads);
        let w = List.hd s.workloads in
        Alcotest.(check (float 0.001)) "p50" 50.0 w.Obs.Qstats.p50;
        Alcotest.(check (float 0.001)) "p95" 95.0 w.p95;
        Alcotest.(check (float 0.001)) "p99" 99.0 w.p99;
        Alcotest.(check (float 0.001)) "max" 100.0 w.max;
        Alcotest.(check int) "top list bounded" 2
          (List.length s.by_count);
        (* i mod 3 = 1 on 34 of 1..100, so "SELECT 2" leads *)
        Alcotest.(check string) "most frequent first" "SELECT 2"
          (List.hd s.by_count).Obs.Qstats.text);
    Alcotest.test_case "outcome and resilience trends are counted" `Quick
      (fun () ->
        let path = Filename.concat (tmpdir ()) "q.log" in
        let log = Result.get_ok (Obs.Qlog.open_log path) in
        Obs.Qlog.append log (mk_record ~cached:true "SELECT 1");
        Obs.Qlog.append log
          (mk_record ~outcome:"error" ~error:"boom" "SELECT 2");
        Obs.Qlog.append log
          (mk_record ~outcome:"degraded" ~retries:3 ~faults:2
             ~events:[ ("naive-fallback", "a.log") ]
             "SELECT 3");
        Obs.Qlog.close log;
        let s =
          Result.get_ok (Obs.Qstats.of_files ~slow_ms:0.5 [ path ])
        in
        let w = List.hd s.Obs.Qstats.workloads in
        Alcotest.(check int) "cached" 1 w.Obs.Qstats.cached;
        Alcotest.(check int) "errors" 1 w.errors;
        Alcotest.(check int) "degraded" 1 w.degraded;
        Alcotest.(check int) "retries" 3 w.retries;
        Alcotest.(check int) "faults" 2 w.faults;
        Alcotest.(check int) "slow at 0.5ms" 3 w.slow;
        (* the JSON shape the cram test pins: top-level keys exist *)
        match Obs.Qstats.to_json s with
        | Obs.Jsonx.Obj fields ->
            List.iter
              (fun k ->
                Alcotest.(check bool) ("has " ^ k) true
                  (List.mem_assoc k fields))
              [
                "records"; "skipped"; "workloads"; "top_by_count";
                "top_by_total_ms";
              ]
        | _ -> Alcotest.fail "to_json is not an object");
  ]

(* ---------------- Prometheus exposition ---------------- *)

let expo_tests =
  [
    Alcotest.test_case "rendered page is structurally valid" `Quick
      (fun () ->
        Obs.Metrics.incr (Obs.Metrics.counter "expo.test_counter");
        Obs.Metrics.observe
          (Obs.Metrics.histogram
             (Obs.Label.render "expo.test_ms" [ ("workload", "w1") ]))
          2.5;
        let page = Obs.Expo.render () in
        (match Obs.Expo.validate page with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let has needle =
          Astring.String.is_infix ~affix:needle page
        in
        Alcotest.(check bool) "prefixed counter" true
          (has "oqf_expo_test_counter");
        Alcotest.(check bool) "type comments" true (has "# TYPE");
        Alcotest.(check bool) "summary quantile series" true
          (has {|oqf_expo_test_ms{quantile="0.95",workload="w1"}|}
          || has {|oqf_expo_test_ms{workload="w1",quantile="0.95"}|}));
    Alcotest.test_case "hostile workload labels stay well-formed" `Quick
      (fun () ->
        Obs.Metrics.observe
          (Obs.Metrics.histogram
             (Obs.Label.render "expo.hostile_ms"
                [ ("workload", "evil\"} oqf_fake 1\n# TYPE") ]))
          1.0;
        match Obs.Expo.validate (Obs.Expo.render ()) with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("injection broke the page: " ^ e));
    Alcotest.test_case "validate rejects malformed lines" `Quick (fun () ->
        (match Obs.Expo.validate "oqf_ok 1\nbad name 2\n" with
        | Error e ->
            Alcotest.(check bool) ("names the line: " ^ e) true
              (Astring.String.is_infix ~affix:"line 2" e)
        | Ok () -> Alcotest.fail "accepted a malformed name");
        match Obs.Expo.validate "oqf_m{l=\"unterminated} 1\n" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "accepted an unterminated label block");
  ]

let suites =
  [
    ("obs.metrics", metrics_tests);
    ("obs.trace", trace_tests);
    ("obs.sinks", sink_file_tests);
    ("obs.labels", label_tests);
    ("obs.qlog", qlog_tests);
    ("obs.qstats", qstats_tests);
    ("obs.expo", expo_tests);
  ]
