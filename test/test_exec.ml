(* Tests for the multicore execution subsystem: the domain worker pool
   (graceful shutdown with in-flight tasks, per-task deadlines), the
   weight-balanced sharder, the master qcheck property that parallel
   execution is result-identical to sequential execution at any shard
   count, and the fingerprint-keyed result cache including automatic
   invalidation across a catalog refresh. *)

let or_fail = function Ok x -> x | Error e -> Alcotest.fail e

(* monotonic busy-wait so the pool tests need no Unix dependency *)
let spin_ms ms =
  let t0 = Obs.Trace.now_ms () in
  while Obs.Trace.now_ms () -. t0 < ms do
    ignore (Sys.opaque_identity ())
  done

(* ------------------------------------------------------------------ *)
(* Shard                                                               *)

let shard_all_items_kept () =
  let items = [ ("a", 50); ("b", 10); ("c", 40); ("d", 10); ("e", 30) ] in
  let shards = Exec.Shard.by_weight ~shards:2 ~weight:snd items in
  let flat = List.concat_map (fun s -> s.Exec.Shard.items) shards in
  Alcotest.(check (list (pair string int)))
    "every item lands in exactly one shard" (List.sort compare items)
    (List.sort compare flat);
  Alcotest.(check int) "two shards" 2 (List.length shards);
  List.iter
    (fun s ->
      Alcotest.(check int)
        "shard weight is the sum of its items" s.Exec.Shard.weight
        (List.fold_left (fun acc (_, w) -> acc + w) 0 s.Exec.Shard.items))
    shards

let shard_balances () =
  (* LPT on 50/40/30/10/10 over 2 bins: {50,10,10} vs {40,30} — within
     30% of each other, far better than a naive round-robin split *)
  let items = [ ("a", 50); ("b", 10); ("c", 40); ("d", 10); ("e", 30) ] in
  let shards = Exec.Shard.by_weight ~shards:2 ~weight:snd items in
  let weights = List.map (fun s -> s.Exec.Shard.weight) shards in
  Alcotest.(check (list int)) "LPT assignment" [ 70; 70 ] weights

let shard_no_empty_bins () =
  let items = [ ("a", 1); ("b", 1) ] in
  let shards = Exec.Shard.by_weight ~shards:8 ~weight:snd items in
  Alcotest.(check int) "only non-empty shards" 2 (List.length shards);
  List.iteri
    (fun i s -> Alcotest.(check int) "dense ids" i s.Exec.Shard.id)
    shards;
  Alcotest.check_raises "shards < 1 rejected"
    (Invalid_argument "Exec.Shard.by_weight: shards must be at least 1")
    (fun () -> ignore (Exec.Shard.by_weight ~shards:0 ~weight:snd items))

let shard_deterministic () =
  let items = List.init 17 (fun i -> (string_of_int i, (i * 7 mod 13) + 1)) in
  let run () = Exec.Shard.by_weight ~shards:4 ~weight:snd items in
  let a = run () and b = run () in
  Alcotest.(check bool) "same partition on every call" true (a = b)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_runs_tasks_in_order () =
  Exec.Pool.with_pool ~jobs:3 @@ fun pool ->
  let results =
    Exec.Pool.run_all pool (List.init 20 (fun i () -> i * i))
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "result order preserved" (i * i) v
      | Error e -> Alcotest.fail e)
    results

let pool_graceful_shutdown_with_in_flight_tasks () =
  let completed = Atomic.make 0 in
  let pool = Exec.Pool.create ~jobs:2 () in
  let handles =
    List.init 8 (fun _ ->
        Exec.Pool.submit pool (fun () ->
            spin_ms 10.0;
            Atomic.incr completed))
  in
  (* workers are still spinning on the first tasks; the rest are queued *)
  Exec.Pool.shutdown pool;
  Alcotest.(check int)
    "every queued task drained before the workers exited" 8
    (Atomic.get completed);
  List.iter
    (fun h ->
      match Exec.Pool.await h with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("task failed during shutdown: " ^ e))
    handles;
  (* shutdown is idempotent, and later submissions are refused *)
  Exec.Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Exec.Pool.submit: pool is shut down") (fun () ->
      ignore (Exec.Pool.submit pool (fun () -> ())))

let pool_task_exception_is_captured () =
  Exec.Pool.with_pool ~jobs:1 @@ fun pool ->
  let h = Exec.Pool.submit pool (fun () -> failwith "boom") in
  (match Exec.Pool.await h with
  | Ok () -> Alcotest.fail "expected the task to fail"
  | Error e ->
      Alcotest.(check bool) "message mentions the exception" true
        (Astring.String.is_infix ~affix:"boom" e));
  (* the worker survived the exception and still takes tasks *)
  match Exec.Pool.await (Exec.Pool.submit pool (fun () -> 41 + 1)) with
  | Ok v -> Alcotest.(check int) "worker survives" 42 v
  | Error e -> Alcotest.fail e

let pool_task_deadline_expires () =
  Exec.Pool.with_pool ~jobs:1 @@ fun pool ->
  let h =
    Exec.Pool.submit ~timeout_ms:5.0 pool (fun () ->
        (* a well-behaved long task polls the deadline, like the
           region-algebra evaluator does once per operator *)
        let rec loop n =
          Obs.Deadline.check ();
          spin_ms 2.0;
          if n = 0 then () else loop (n - 1)
        in
        loop 1000)
  in
  match Exec.Pool.await h with
  | Ok () -> Alcotest.fail "expected a timeout"
  | Error e ->
      Alcotest.(check bool)
        ("timeout message, got: " ^ e)
        true
        (Astring.String.is_infix ~affix:"timed out" e)

let pool_deadline_interrupts_eval () =
  (* an adversarial direct-inclusion expression over a late-blocked
     window is quadratic (bench E8's worst case); the evaluator's
     per-operator poll must abort it *)
  let n = 3000 in
  let windows = [ (0, (3 * n) + 3) ] in
  let points = List.init n (fun i -> ((3 * i) + 1, (3 * i) + 2)) in
  let wrappers = List.init n (fun i -> (3 * i, (3 * i) + 3)) in
  let text =
    Pat.Text.of_string (String.make ((3 * n) + 4) 'x')
  in
  let instance =
    Pat.Instance.create text
      [
        ("W", Pat.Region_set.of_pairs windows);
        ("P", Pat.Region_set.of_pairs points);
        ("U", Pat.Region_set.of_pairs wrappers);
      ]
  in
  let expr = Ralg.Expr_parser.parse_exn "W >d P" in
  Exec.Pool.with_pool ~jobs:1 @@ fun pool ->
  let h =
    Exec.Pool.submit ~timeout_ms:1.0 pool (fun () ->
        (* evaluate repeatedly so a fast machine still crosses the
           deadline between operator applications *)
        for _ = 1 to 10_000 do
          ignore (Ralg.Eval.eval instance expr)
        done)
  in
  match Exec.Pool.await h with
  | Ok () -> Alcotest.fail "expected the evaluator to be interrupted"
  | Error e ->
      Alcotest.(check bool)
        ("timeout surfaced from the eval loop, got: " ^ e)
        true
        (Astring.String.is_infix ~affix:"timed out" e)

(* ------------------------------------------------------------------ *)
(* run_parallel == sequential                                          *)

let rows_t =
  Alcotest.testable
    (Fmt.Dump.list (Fmt.Dump.pair Fmt.Dump.string (Fmt.Dump.list Odb.Value.pp)))
    (List.equal (fun (f1, r1) (f2, r2) ->
         String.equal f1 f2 && List.equal Odb.Value.equal r1 r2))

let bibtex_corpus sizes =
  let files =
    List.mapi
      (fun i n ->
        ( Printf.sprintf "refs%d.bib" i,
          Pat.Text.of_string
            (Workload.Bibtex_gen.generate
               { (Workload.Bibtex_gen.with_size n) with seed = 1000 + i }) ))
      sizes
  in
  or_fail (Oqf.Corpus.make_full Fschema.Bibtex_schema.view files)

let log_corpus sizes =
  let files =
    List.mapi
      (fun i n ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size n) with seed = 2000 + i }) ))
      sizes
  in
  or_fail (Oqf.Corpus.make_full Fschema.Log_schema.view files)

let bibtex_queries =
  [
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
    {|SELECT r.Key FROM References r|};
    {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE r.Abstract CONTAINS "derivation"|};
  ]

let log_queries =
  [
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e FROM Entries e WHERE e.Level = "WARN"|};
  ]

let check_parallel_equals_sequential corpus q_text jobs =
  let q = Odb.Query_parser.parse_exn q_text in
  let seq = or_fail (Oqf.Corpus.run corpus q) in
  let par = or_fail (Exec.Driver.run_parallel ~jobs corpus q) in
  Alcotest.check rows_t
    (Printf.sprintf "rows agree at jobs=%d: %s" jobs q_text)
    seq.Oqf.Corpus.rows par.Exec.Driver.rows;
  Alcotest.(check (list string))
    "per-file outcomes cover the same files in corpus order"
    (List.map fst seq.Oqf.Corpus.per_file)
    (List.map fst par.Exec.Driver.per_file);
  Alcotest.(check bool) "not from cache" false par.Exec.Driver.from_cache

let parallel_equals_sequential_qcheck =
  QCheck.Test.make ~count:25
    ~name:"run_parallel == sequential Corpus.run (any shard count)"
    QCheck.(
      quad
        (int_range 1 4)  (* number of files *)
        (int_range 3 14)  (* entries per file *)
        (int_range 1 8)  (* jobs / shard count *)
        (pair bool (int_range 0 9)) (* workload pick, query pick *))
    (fun (n_files, size, jobs, (use_log, q_pick)) ->
      let sizes = List.init n_files (fun i -> size + (i * 3)) in
      let corpus, queries =
        if use_log then (log_corpus sizes, log_queries)
        else (bibtex_corpus sizes, bibtex_queries)
      in
      let q_text = List.nth queries (q_pick mod List.length queries) in
      let q = Odb.Query_parser.parse_exn q_text in
      let seq =
        match Oqf.Corpus.run corpus q with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "sequential failed: %s" e
      in
      let par =
        match Exec.Driver.run_parallel ~jobs corpus q with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "parallel failed: %s" e
      in
      if
        not
          (List.equal
             (fun (f1, r1) (f2, r2) ->
               String.equal f1 f2 && List.equal Odb.Value.equal r1 r2)
             seq.Oqf.Corpus.rows par.Exec.Driver.rows)
      then
        QCheck.Test.fail_reportf
          "rows differ (files=%d size=%d jobs=%d log=%b q=%s)" n_files size
          jobs use_log q_text;
      true)

let parallel_battery () =
  (* a fixed battery on a mixed-size corpus, at every jobs count 1..8,
     including jobs > files; CI runs the suite under OQF_JOBS=4 and this
     also exercises the env-derived default *)
  let corpus = bibtex_corpus [ 20; 4; 12; 8 ] in
  List.iter
    (fun q -> check_parallel_equals_sequential corpus q (Exec.Driver.default_jobs ()))
    bibtex_queries;
  List.iter
    (fun jobs ->
      check_parallel_equals_sequential corpus
        {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        jobs)
    [ 1; 2; 3; 8 ]

let parallel_reports_shards () =
  let corpus = log_corpus [ 30; 10; 10; 5; 5 ] in
  let q = Odb.Query_parser.parse_exn {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|} in
  let r = or_fail (Exec.Driver.run_parallel ~jobs:2 corpus q) in
  Alcotest.(check int) "two shard reports" 2 (List.length r.Exec.Driver.per_shard);
  let shard_files =
    List.concat_map (fun s -> s.Exec.Driver.files) r.Exec.Driver.per_shard
  in
  Alcotest.(check (list string))
    "shards cover every file exactly once"
    (List.sort compare (Oqf.Corpus.files corpus))
    (List.sort compare shard_files)

let parallel_rejects_bad_jobs () =
  let corpus = log_corpus [ 3 ] in
  let q = Odb.Query_parser.parse_exn {|SELECT e FROM Entries e|} in
  (match Exec.Driver.run_parallel ~jobs:0 corpus q with
  | Ok _ -> Alcotest.fail "jobs=0 must be rejected"
  | Error e ->
      Alcotest.(check bool) "names the bad value" true
        (Astring.String.is_infix ~affix:"jobs must be at least 1" e));
  match Exec.Driver.run_parallel ~jobs:(-2) corpus q with
  | Ok _ -> Alcotest.fail "negative jobs must be rejected"
  | Error _ -> ()

let parallel_propagates_deterministic_error () =
  let corpus = bibtex_corpus [ 6; 6; 6 ] in
  (* unknown class fails at compile time in every file; the error must
     name the first file in corpus order, like the sequential runner *)
  let q = Odb.Query_parser.parse_exn {|SELECT x FROM Nope x|} in
  let seq_err =
    match Oqf.Corpus.run corpus q with
    | Error e -> e
    | Ok _ -> Alcotest.fail "expected sequential failure"
  in
  List.iter
    (fun jobs ->
      match Exec.Driver.run_parallel ~jobs corpus q with
      | Ok _ -> Alcotest.fail "expected parallel failure"
      | Error e -> Alcotest.(check string) "same error as sequential" seq_err e)
    [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Rcache                                                              *)

let rcache_hit_and_normalization () =
  let corpus = log_corpus [ 12 ] in
  let cache = Exec.Rcache.create () in
  let q1 =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  (* same query, different spacing: must normalize to the same key *)
  let q2 =
    Odb.Query_parser.parse_exn
      {|SELECT   e.Service
        FROM Entries   e
        WHERE e.Level = "ERROR"|}
  in
  let r1 = or_fail (Exec.Driver.run_one ~cache corpus q1) in
  Alcotest.(check bool) "first run misses" false r1.Exec.Driver.from_cache;
  let r2 = or_fail (Exec.Driver.run_one ~cache corpus q2) in
  Alcotest.(check bool) "reformatted query hits" true r2.Exec.Driver.from_cache;
  Alcotest.check rows_t "cached rows identical" r1.Exec.Driver.rows
    r2.Exec.Driver.rows;
  let s = Exec.Rcache.stats cache in
  Alcotest.(check int) "one hit" 1 s.Exec.Rcache.hits;
  Alcotest.(check int) "one miss" 1 s.Exec.Rcache.misses

let rcache_parallel_populates_too () =
  let corpus = log_corpus [ 8; 8 ] in
  let cache = Exec.Rcache.create () in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let r1 = or_fail (Exec.Driver.run_parallel ~jobs:2 ~cache corpus q) in
  let r2 = or_fail (Exec.Driver.run_parallel ~jobs:2 ~cache corpus q) in
  Alcotest.(check bool) "second parallel run served from cache" true
    r2.Exec.Driver.from_cache;
  Alcotest.check rows_t "same rows" r1.Exec.Driver.rows r2.Exec.Driver.rows

let rcache_lru_eviction () =
  let corpus = log_corpus [ 10 ] in
  let cache = Exec.Rcache.create ~capacity:2 () in
  let q n =
    Odb.Query_parser.parse_exn
      (Printf.sprintf {|SELECT e FROM Entries e WHERE e.Pid = "%d"|} n)
  in
  ignore (or_fail (Exec.Driver.run_one ~cache corpus (q 1)));
  ignore (or_fail (Exec.Driver.run_one ~cache corpus (q 2)));
  (* touch q1 so q2 is the LRU victim when q3 arrives *)
  ignore (or_fail (Exec.Driver.run_one ~cache corpus (q 1)));
  ignore (or_fail (Exec.Driver.run_one ~cache corpus (q 3)));
  let r1 = or_fail (Exec.Driver.run_one ~cache corpus (q 1)) in
  Alcotest.(check bool) "recently-used entry survived" true
    r1.Exec.Driver.from_cache;
  let r2 = or_fail (Exec.Driver.run_one ~cache corpus (q 2)) in
  Alcotest.(check bool) "LRU entry was evicted" false r2.Exec.Driver.from_cache;
  let s = Exec.Rcache.stats cache in
  Alcotest.(check bool) "evictions counted" true (s.Exec.Rcache.evictions >= 1)

(* eviction edges, driven through the raw Rcache API so the recency
   bookkeeping is visible without a corpus in the way *)

let rkey text fp =
  Exec.Rcache.key ~query:(Odb.Query_parser.parse_exn text) ~fingerprint:fp

let payload file = [ (file, [ Odb.Value.Str file ]) ]

let rcache_capacity_one () =
  let cache = Exec.Rcache.create ~capacity:1 () in
  let k1 = rkey {|SELECT e FROM Entries e WHERE e.Pid = "1"|} "fp" in
  let k2 = rkey {|SELECT e FROM Entries e WHERE e.Pid = "2"|} "fp" in
  Exec.Rcache.add cache k1 (payload "a");
  Alcotest.(check bool) "sole entry resident" true
    (Exec.Rcache.find cache k1 <> None);
  Exec.Rcache.add cache k2 (payload "b");
  Alcotest.(check bool) "previous entry evicted" true
    (Exec.Rcache.find cache k1 = None);
  Alcotest.(check bool) "new entry resident" true
    (Exec.Rcache.find cache k2 <> None);
  let s = Exec.Rcache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Exec.Rcache.evictions;
  Alcotest.(check int) "one resident entry" 1 s.Exec.Rcache.entries

let rcache_reinsert_refreshes_lru () =
  let cache = Exec.Rcache.create ~capacity:2 () in
  let k n = rkey (Printf.sprintf {|SELECT e FROM Entries e WHERE e.Pid = "%d"|} n) "fp" in
  Exec.Rcache.add cache (k 1) (payload "v1");
  Exec.Rcache.add cache (k 2) (payload "v2");
  (* re-adding key 1 must replace its payload in place (no growth) and
     mark it most recently used, leaving key 2 as the victim *)
  Exec.Rcache.add cache (k 1) (payload "v1'");
  Alcotest.(check int) "reinsertion does not grow the cache" 2
    (Exec.Rcache.stats cache).Exec.Rcache.entries;
  (match Exec.Rcache.find cache (k 1) with
  | Some [ (f, _) ] -> Alcotest.(check string) "payload replaced" "v1'" f
  | _ -> Alcotest.fail "reinserted entry lost");
  Exec.Rcache.add cache (k 3) (payload "v3");
  Alcotest.(check bool) "refreshed key survives the next eviction" true
    (Exec.Rcache.find cache (k 1) <> None);
  Alcotest.(check bool) "stale key is the victim" true
    (Exec.Rcache.find cache (k 2) = None)

let rcache_fingerprint_partitions_keys () =
  let cache = Exec.Rcache.create () in
  let texts =
    [
      {|SELECT e FROM Entries e WHERE e.Pid = "1"|};
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    ]
  in
  List.iter (fun t -> Exec.Rcache.add cache (rkey t "fp-before") (payload t)) texts;
  (* a corpus change (e.g. one appended member) re-fingerprints every
     key, so no row cached under the old corpus can be served *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "old-fingerprint row not served" true
        (Exec.Rcache.find cache (rkey t "fp-after") = None))
    texts;
  List.iter
    (fun t ->
      Alcotest.(check bool) "old rows still keyed separately" true
        (Exec.Rcache.find cache (rkey t "fp-before") <> None))
    texts

(* ------------------------------------------------------------------ *)
(* Containment layer: Oqf.Subsume + Rcache.find_contained              *)

let parse_q = Odb.Query_parser.parse_exn

let subsume_residual_detection () =
  let broad = parse_q {|SELECT e FROM Entries e|} in
  let narrow = parse_q {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|} in
  (match Oqf.Subsume.subsumes narrow ~by:broad with
  | Some _ -> ()
  | None -> Alcotest.fail "conjunct-superset subsumption not detected");
  Alcotest.(check bool) "the superset is not subsumed by the subset" true
    (Oqf.Subsume.subsumes broad ~by:narrow = None);
  (* a projected (non-bare) select cannot decide the residual per row,
     so the conservative contract refuses it *)
  let broad_proj = parse_q {|SELECT e.Service FROM Entries e|} in
  let narrow_proj =
    parse_q {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  Alcotest.(check bool) "row-undecidable residual refused" true
    (Oqf.Subsume.subsumes narrow_proj ~by:broad_proj = None);
  Alcotest.(check bool) "differing select lists never subsume" true
    (Oqf.Subsume.subsumes narrow ~by:broad_proj = None)

let rcache_containment_serves_subset () =
  let corpus = log_corpus [ 25; 15 ] in
  let broad = parse_q {|SELECT e FROM Entries e|} in
  let narrow = parse_q {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|} in
  (* the reference: a fresh, cache-free evaluation of the narrow query *)
  let fresh = or_fail (Exec.Driver.run_one corpus narrow) in
  let cache = Exec.Rcache.create () in
  ignore (or_fail (Exec.Driver.run_one ~cache corpus broad));
  let served = or_fail (Exec.Driver.run_one ~cache corpus narrow) in
  Alcotest.(check bool) "subset served from cache" true
    served.Exec.Driver.from_cache;
  (match served.Exec.Driver.cache_superset with
  | Some s ->
      Alcotest.(check string) "names the superset query"
        (Odb.Query.to_string broad) s
  | None -> Alcotest.fail "containment hit must name its superset");
  Alcotest.check rows_t "filtered rows byte-identical to a fresh run"
    fresh.Exec.Driver.rows served.Exec.Driver.rows;
  Alcotest.(check int) "containment hit counted" 1
    (Exec.Rcache.stats cache).Exec.Rcache.containment_hits;
  (* serving by containment populates the exact key, so the same probe
     now hits directly, with no superset attribution *)
  let again = or_fail (Exec.Driver.run_one ~cache corpus narrow) in
  Alcotest.(check bool) "exact hit on repeat" true
    again.Exec.Driver.from_cache;
  Alcotest.(check bool) "no superset attribution on an exact hit" true
    (again.Exec.Driver.cache_superset = None);
  Alcotest.(check int) "no second containment hit" 1
    (Exec.Rcache.stats cache).Exec.Rcache.containment_hits

let rcache_containment_disabled () =
  let corpus = log_corpus [ 10 ] in
  let broad = parse_q {|SELECT e FROM Entries e|} in
  let narrow = parse_q {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|} in
  let cache = Exec.Rcache.create ~containment:false () in
  ignore (or_fail (Exec.Driver.run_one ~cache corpus broad));
  let r = or_fail (Exec.Driver.run_one ~cache corpus narrow) in
  Alcotest.(check bool) "no containment serving when disabled" false
    r.Exec.Driver.from_cache;
  Alcotest.(check int) "no containment hits" 0
    (Exec.Rcache.stats cache).Exec.Rcache.containment_hits

let temp_dir () =
  let path = Filename.temp_file "oqf_exec_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rcache_invalidated_by_catalog_refresh () =
  let dir = temp_dir () in
  let log_path = Filename.concat dir "app.log" in
  let base = Workload.Log_gen.generate (Workload.Log_gen.with_size 30) in
  let grown = Workload.Log_gen.generate (Workload.Log_gen.with_size 40) in
  write_file log_path base;
  let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" log_path)
  in
  let cache = Exec.Rcache.create () in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let corpus = or_fail (Oqf.Corpus.of_catalog cat ~schema:"log") in
  let fp_before = Exec.Rcache.fingerprint corpus in
  let r1 = or_fail (Exec.Driver.run_one ~cache corpus q) in
  let r2 = or_fail (Exec.Driver.run_one ~cache corpus q) in
  Alcotest.(check bool) "warm repeat hits" true r2.Exec.Driver.from_cache;
  (* the source grows; refresh extends the index; the rebuilt corpus
     fingerprints differently, so the cached rows cannot be served *)
  write_file log_path grown;
  (match or_fail (Oqf_catalog.Catalog.refresh cat log_path) with
  | Oqf_catalog.Catalog.Extended _ -> ()
  | o ->
      Alcotest.failf "expected incremental extension, got %a"
        Oqf_catalog.Catalog.pp_refresh o);
  let corpus' = or_fail (Oqf.Corpus.of_catalog cat ~schema:"log") in
  let fp_after = Exec.Rcache.fingerprint corpus' in
  Alcotest.(check bool) "refresh changed the corpus fingerprint" false
    (String.equal fp_before fp_after);
  let r3 = or_fail (Exec.Driver.run_one ~cache corpus' q) in
  Alcotest.(check bool) "post-refresh run recomputes" false
    r3.Exec.Driver.from_cache;
  Alcotest.(check bool)
    "the grown log has at least as many answers" true
    (List.length r3.Exec.Driver.rows >= List.length r1.Exec.Driver.rows);
  let r4 = or_fail (Exec.Driver.run_one ~cache corpus' q) in
  Alcotest.(check bool) "fresh result cached under the new key" true
    r4.Exec.Driver.from_cache

(* ------------------------------------------------------------------ *)
(* batch + workload-labelled metrics                                   *)

let batch_runs_all_queries () =
  let corpus = bibtex_corpus [ 10; 6 ] in
  let cache = Exec.Rcache.create () in
  let queries =
    List.map Odb.Query_parser.parse_exn
      [
        {|SELECT r.Key FROM References r|};
        {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
        {|SELECT r.Key FROM References r|};  (* repeat: cache hit *)
      ]
  in
  let results = Exec.Driver.run_batch ~jobs:2 ~cache corpus queries in
  Alcotest.(check int) "one result per query" 3 (List.length results);
  List.iteri
    (fun i (q, r) ->
      Alcotest.(check string)
        "results come back in input order"
        (Odb.Query.to_string (List.nth queries i))
        (Odb.Query.to_string q);
      match r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "query %d failed: %s" i e)
    results;
  (* the repeated query must agree with its first occurrence *)
  match (List.nth results 0, List.nth results 2) with
  | (_, Ok a), (_, Ok b) ->
      Alcotest.check rows_t "repeat equals first" a.Exec.Driver.rows
        b.Exec.Driver.rows
  | _ -> Alcotest.fail "unreachable"

let workload_labelled_histograms () =
  let corpus = bibtex_corpus [ 5 ] in
  let q = Odb.Query_parser.parse_exn {|SELECT r.Key FROM References r|} in
  ignore (or_fail (Oqf.Corpus.run corpus q));
  let names = List.map fst (Obs.Metrics.histograms ()) in
  Alcotest.(check bool)
    "labelled latency histogram registered" true
    (List.mem {|query.latency_ms{workload="bibtex"}|} names);
  Alcotest.(check bool)
    "unlabelled alias still recorded" true
    (List.mem "query.latency_ms" names)

(* ------------------------------------------------------------------ *)
(* Fail policies and fault recovery                                    *)

let with_faults spec f =
  match Stdx.Fault.parse spec with
  | Error e -> Alcotest.failf "fault spec %S rejected: %s" spec e
  | Ok config ->
      Stdx.Fault.set (Some config);
      Stdx.Retry.Breaker.reset_all ();
      Fun.protect
        ~finally:(fun () ->
          Stdx.Fault.set None;
          Stdx.Retry.Breaker.reset_all ())
        f

let error_query = {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}

let pool_worker_survives_raising_tasks () =
  (* one worker, raising tasks interleaved with good ones: if the
     worker died on the first failure, the later awaits would hang *)
  Exec.Pool.with_pool ~jobs:1 @@ fun pool ->
  match
    Exec.Pool.run_all pool
      [
        (fun () -> failwith "task 1 dies");
        (fun () -> 42);
        (fun () -> raise Not_found);
        (fun () -> 7);
      ]
  with
  | [ Error _; Ok 42; Error _; Ok 7 ] -> ()
  | rs -> Alcotest.failf "unexpected results (%d)" (List.length rs)

let degrade_falls_back_to_naive () =
  let corpus = log_corpus [ 10; 6 ] in
  let q = Odb.Query_parser.parse_exn error_query in
  let reference = or_fail (Oqf.Corpus.run corpus q) in
  with_faults "permanent:1.0,only:pool.task" (fun () ->
      (* every pool task and the coordinator's shard retry fail, so
         every file must come back through the naive scan — with the
         same rows as the fault-free run *)
      let out =
        or_fail
          (Exec.Driver.run_parallel ~jobs:2
             ~fail_policy:Exec.Driver.Degrade corpus q)
      in
      Alcotest.check rows_t "rows identical to fault-free"
        reference.Oqf.Corpus.rows out.Exec.Driver.rows;
      Alcotest.(check bool) "degradation reported" true
        (out.Exec.Driver.degraded <> []);
      Alcotest.(check bool) "naive fallbacks present" true
        (List.exists
           (fun d -> d.Oqf.Degrade.action = Oqf.Degrade.Naive_fallback)
           out.Exec.Driver.degraded))

let partial_excludes_failed_files () =
  let corpus = log_corpus [ 10; 6 ] in
  let q = Odb.Query_parser.parse_exn error_query in
  with_faults "permanent:1.0,only:pool.task" (fun () ->
      let out =
        or_fail
          (Exec.Driver.run_parallel ~jobs:2
             ~fail_policy:Exec.Driver.Partial corpus q)
      in
      Alcotest.check rows_t "no rows survive" [] out.Exec.Driver.rows;
      Alcotest.(check bool) "every file excluded" true
        (List.for_all
           (fun d ->
             d.Oqf.Degrade.action = Oqf.Degrade.Excluded
             || d.Oqf.Degrade.action = Oqf.Degrade.Shard_retried)
           out.Exec.Driver.degraded
        && List.exists
             (fun d -> d.Oqf.Degrade.action = Oqf.Degrade.Excluded)
             out.Exec.Driver.degraded))

let fail_fast_still_fails () =
  let corpus = log_corpus [ 10; 6 ] in
  let q = Odb.Query_parser.parse_exn error_query in
  with_faults "permanent:1.0,only:pool.task" (fun () ->
      match Exec.Driver.run_parallel ~jobs:2 corpus q with
      | Ok _ -> Alcotest.fail "fail-fast must surface the task failure"
      | Error e ->
          Alcotest.(check bool) "attributed to a shard" true
            (Astring.String.is_infix ~affix:"shard" e))

let degrade_aborts_query_defects () =
  (* a query-level defect fails under every policy: degrading it away
     would silently return nothing *)
  let corpus = log_corpus [ 4 ] in
  let q = Odb.Query_parser.parse_exn {|SELECT x FROM Nope x|} in
  match
    Exec.Driver.run_parallel ~jobs:2 ~fail_policy:Exec.Driver.Degrade corpus q
  with
  | Ok _ -> Alcotest.fail "expected a query-level failure"
  | Error e ->
      Alcotest.(check bool) "names the unknown class" true
        (Astring.String.is_infix ~affix:"unknown class" e)

let transient_faults_are_invisible () =
  (* a recoverable schedule (burst < retry budget) is fully masked by
     the retry layer: same rows, no degradation, even under fail-fast *)
  let corpus = log_corpus [ 8; 5; 3 ] in
  let q = Odb.Query_parser.parse_exn error_query in
  let reference = or_fail (Oqf.Corpus.run corpus q) in
  with_faults "transient:0.4,burst:2,seed:11" (fun () ->
      let out = or_fail (Exec.Driver.run_parallel ~jobs:3 corpus q) in
      Alcotest.check rows_t "rows identical" reference.Oqf.Corpus.rows
        out.Exec.Driver.rows;
      Alcotest.(check (list string))
        "nothing degraded" []
        (List.map (fun d -> d.Oqf.Degrade.file) out.Exec.Driver.degraded))

(* Disk-backed equivalence: build a catalog on disk, corrupt an index,
   arm a recoverable fault schedule, and check a Degrade run still
   returns the fault-free sequential rows at any shard count. *)

let temp_dir () =
  let path = Filename.temp_file "oqf_exec_fault" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let degrade_equals_fault_free_qcheck =
  QCheck.Test.make ~count:12
    ~name:"degrade under recoverable faults == fault-free run (disk catalog)"
    QCheck.(
      quad
        (int_range 1 3)  (* number of files *)
        (int_range 3 10)  (* entries per file *)
        (int_range 1 8)  (* jobs / shard count *)
        (int_range 0 999) (* fault schedule seed *))
    (fun (n_files, size, jobs, seed) ->
      (* clamp against shrinker excursions outside the range *)
      let n_files = max 1 (min 3 n_files) in
      let size = max 3 (min 10 size) in
      let jobs = max 1 (min 8 jobs) in
      let dir = temp_dir () in
      let cat =
        match Oqf_catalog.Catalog.init (Filename.concat dir "cat") with
        | Ok cat -> cat
        | Error e -> QCheck.Test.fail_reportf "init failed: %s" e
      in
      for i = 0 to n_files - 1 do
        let path = Filename.concat dir (Printf.sprintf "n%d.log" i) in
        write_file path
          (Workload.Log_gen.generate
             { (Workload.Log_gen.with_size (size + (i * 2))) with
               seed = 3000 + i
             });
        match Oqf_catalog.Catalog.add cat ~schema:"log" path with
        | Ok _ -> ()
        | Error e -> QCheck.Test.fail_reportf "add failed: %s" e
      done;
      let q = Odb.Query_parser.parse_exn error_query in
      let run_rows corpus fail_policy =
        match Exec.Driver.run_parallel ~jobs:1 ~fail_policy corpus q with
        | Ok out -> out.Exec.Driver.rows
        | Error e -> QCheck.Test.fail_reportf "reference run failed: %s" e
      in
      let reference =
        match Oqf.Corpus.of_catalog cat ~schema:"log" with
        | Ok corpus -> run_rows corpus Exec.Driver.Fail_fast
        | Error e -> QCheck.Test.fail_reportf "of_catalog failed: %s" e
      in
      (* damage the first index on disk, then run from a fresh open
         under a recoverable schedule *)
      (match Oqf_catalog.Catalog.entries cat with
      | e :: _ ->
          let idx =
            Filename.concat (Oqf_catalog.Catalog.dir cat)
              e.Oqf_catalog.Catalog.index_file
          in
          let ic = open_in_bin idx in
          let raw = really_input_string ic (in_channel_length ic) in
          close_in ic;
          write_file idx (String.sub raw 0 (String.length raw * 2 / 3))
      | [] -> QCheck.Test.fail_reportf "catalog unexpectedly empty");
      let spec = Printf.sprintf "transient:0.2,burst:2,seed:%d" seed in
      let config =
        match Stdx.Fault.parse spec with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_reportf "spec rejected: %s" e
      in
      Stdx.Fault.set (Some config);
      Stdx.Retry.Breaker.reset_all ();
      Fun.protect
        ~finally:(fun () ->
          Stdx.Fault.set None;
          Stdx.Retry.Breaker.reset_all ())
        (fun () ->
          let cat2 =
            match
              Oqf_catalog.Catalog.open_dir (Filename.concat dir "cat")
            with
            | Ok cat -> cat
            | Error e -> QCheck.Test.fail_reportf "reopen failed: %s" e
          in
          let corpus, lost =
            match Oqf.Corpus.of_catalog_robust cat2 ~schema:"log" with
            | Ok r -> r
            | Error e ->
                QCheck.Test.fail_reportf "robust corpus failed: %s" e
          in
          if lost <> [] then
            QCheck.Test.fail_reportf
              "the corrupt index must heal, not exclude (seed=%d)" seed;
          let out =
            match
              Exec.Driver.run_parallel ~jobs
                ~fail_policy:Exec.Driver.Degrade corpus q
            with
            | Ok out -> out
            | Error e ->
                QCheck.Test.fail_reportf "degrade run failed: %s" e
          in
          if
            not
              (List.equal
                 (fun (f1, r1) (f2, r2) ->
                   String.equal f1 f2 && List.equal Odb.Value.equal r1 r2)
                 reference out.Exec.Driver.rows)
          then
            QCheck.Test.fail_reportf
              "rows differ (files=%d size=%d jobs=%d seed=%d)" n_files size
              jobs seed;
          true))

let suites =
  [
    ( "exec.shard",
      [
        Alcotest.test_case "all items kept" `Quick shard_all_items_kept;
        Alcotest.test_case "LPT balance" `Quick shard_balances;
        Alcotest.test_case "no empty bins, dense ids" `Quick shard_no_empty_bins;
        Alcotest.test_case "deterministic" `Quick shard_deterministic;
      ] );
    ( "exec.pool",
      [
        Alcotest.test_case "results in order" `Quick pool_runs_tasks_in_order;
        Alcotest.test_case "graceful shutdown drains in-flight tasks" `Quick
          pool_graceful_shutdown_with_in_flight_tasks;
        Alcotest.test_case "task exception captured" `Quick
          pool_task_exception_is_captured;
        Alcotest.test_case "task deadline expires" `Quick
          pool_task_deadline_expires;
        Alcotest.test_case "deadline interrupts the eval loop" `Quick
          pool_deadline_interrupts_eval;
      ] );
    ( "exec.parallel",
      [
        QCheck_alcotest.to_alcotest parallel_equals_sequential_qcheck;
        Alcotest.test_case "battery at jobs 1..8 and OQF_JOBS default" `Quick
          parallel_battery;
        Alcotest.test_case "shard reports cover the corpus" `Quick
          parallel_reports_shards;
        Alcotest.test_case "jobs < 1 rejected" `Quick parallel_rejects_bad_jobs;
        Alcotest.test_case "deterministic error propagation" `Quick
          parallel_propagates_deterministic_error;
      ] );
    ( "exec.rcache",
      [
        Alcotest.test_case "hit + query normalization" `Quick
          rcache_hit_and_normalization;
        Alcotest.test_case "parallel runs populate the cache" `Quick
          rcache_parallel_populates_too;
        Alcotest.test_case "LRU eviction" `Quick rcache_lru_eviction;
        Alcotest.test_case "capacity 1: every insert evicts" `Quick
          rcache_capacity_one;
        Alcotest.test_case "duplicate-key reinsertion refreshes recency"
          `Quick rcache_reinsert_refreshes_lru;
        Alcotest.test_case "fingerprint change partitions every key" `Quick
          rcache_fingerprint_partitions_keys;
        Alcotest.test_case "invalidated by catalog refresh" `Quick
          rcache_invalidated_by_catalog_refresh;
        Alcotest.test_case "subsumption residual detection" `Quick
          subsume_residual_detection;
        Alcotest.test_case "containment serves a subset byte-identically"
          `Quick rcache_containment_serves_subset;
        Alcotest.test_case "containment layer can be disabled" `Quick
          rcache_containment_disabled;
      ] );
    ( "exec.batch",
      [
        Alcotest.test_case "batch order and cache reuse" `Quick
          batch_runs_all_queries;
        Alcotest.test_case "workload-labelled histograms" `Quick
          workload_labelled_histograms;
      ] );
    ( "exec.robustness",
      [
        Alcotest.test_case "worker survives raising tasks" `Quick
          pool_worker_survives_raising_tasks;
        Alcotest.test_case "degrade falls back to naive scan" `Quick
          degrade_falls_back_to_naive;
        Alcotest.test_case "partial excludes failed files" `Quick
          partial_excludes_failed_files;
        Alcotest.test_case "fail-fast still fails" `Quick fail_fast_still_fails;
        Alcotest.test_case "query defects abort under degrade" `Quick
          degrade_aborts_query_defects;
        Alcotest.test_case "recoverable faults are invisible" `Quick
          transient_faults_are_invisible;
        QCheck_alcotest.to_alcotest degrade_equals_fault_free_qcheck;
      ] );
  ]
