(* Tests for the cost subsystem: statistics collection (live instances
   and the catalog manifest's rstat/rdepth lines), the estimator's
   safety properties (finite, non-negative, sound upper bounds), the
   equivalence of cost-based and rule-based plan selection, and the
   workload-driven index advisor. *)

module Stats = Oqf_cost.Stats
module Model = Oqf_cost.Model
module Planner = Oqf_cost.Planner
module Advise = Oqf_cost.Advise
module Expr = Ralg.Expr

let or_fail = function Ok x -> x | Error e -> Alcotest.fail e

let temp_dir () =
  let path = Filename.temp_file "oqf_cost_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* word k sits at chars [2k, 2k+1]: "a b c d e f" *)
let demo_instance () =
  Pat.Instance.create
    (Pat.Text.of_string "a b c d e f")
    [
      ("Outer", Pat.Region_set.of_pairs [ (0, 11) ]);
      ("Inner", Pat.Region_set.of_pairs [ (2, 3); (6, 9) ]);
    ]

let mk_entry ?(stats = []) ?(depths = []) ~source ~length () =
  {
    Oqf_catalog.Catalog.source;
    schema = "log";
    index_names = [];
    length;
    digest = "";
    version = 1;
    index_file = "";
    stats;
    depths;
  }

(* ------------------------------------------------------------------ *)
(* Statistics *)

let stats_tests =
  [
    Alcotest.test_case "of_instance: cardinalities and nesting depths" `Quick
      (fun () ->
        let stats = Stats.of_instance (demo_instance ()) in
        Alcotest.(check (float 0.0)) "card Outer" 1.0 (Stats.card stats "Outer");
        Alcotest.(check (float 0.0)) "card Inner" 2.0 (Stats.card stats "Inner");
        Alcotest.(check (float 0.0))
          "unknown name falls back to the default"
          (float_of_int Stats.default_card)
          (Stats.card stats "Nope");
        Alcotest.(check (float 0.0)) "universe" 3.0 (Stats.universe stats);
        (match Stats.find stats "Inner" with
        | Some ns ->
            Alcotest.(check (list int))
              "Inner nests one level down" [ 0; 2 ]
              (Array.to_list ns.Stats.depth_hist)
        | None -> Alcotest.fail "Inner has no stats");
        Alcotest.(check (float 1e-9))
          "Outer over Inner overlaps fully" 1.0
          (Stats.depth_overlap stats ~outer:"Outer" ~inner:"Inner");
        Alcotest.(check (float 1e-9))
          "Inner over Outer clamps to the floor" 0.05
          (Stats.depth_overlap stats ~outer:"Inner" ~inner:"Outer"));
    Alcotest.test_case "uniform: every knob degrades gracefully" `Quick
      (fun () ->
        let stats = Stats.uniform () in
        Alcotest.(check (float 0.0))
          "default card"
          (float_of_int Stats.default_card)
          (Stats.card stats "Anything");
        Alcotest.(check bool) "universe positive" true (Stats.universe stats >= 1.0);
        Alcotest.(check (float 0.0))
          "unknown selectivity is the PR 4 heuristic" 0.1
          (Stats.word_selectivity stats "Anything");
        Alcotest.(check (float 0.0))
          "unknown overlap is conservative" 1.0
          (Stats.depth_overlap stats ~outer:"A" ~inner:"B"));
    Alcotest.test_case "of_entries: merges across files, tolerates legacy"
      `Quick (fun () ->
        let a =
          mk_entry ~source:"a.log" ~length:100
            ~stats:[ ("A", 4, 8) ]
            ~depths:[ ("A", [| 1; 3 |]) ]
            ()
        in
        let b =
          mk_entry ~source:"b.log" ~length:50
            ~stats:[ ("A", 2, 2) ]
            ~depths:[ ("A", [| 2 |]) ]
            ()
        in
        let legacy = mk_entry ~source:"old.log" ~length:70 () in
        let stats = Stats.of_entries [ a; b; legacy ] in
        Alcotest.(check (list string)) "names" [ "A" ] (Stats.names stats);
        Alcotest.(check (float 0.0)) "cards sum" 6.0 (Stats.card stats "A");
        Alcotest.(check (float 0.0))
          "bytes sum every file" 220.0 (Stats.text_bytes stats);
        match Stats.find stats "A" with
        | Some ns ->
            Alcotest.(check (list int))
              "histograms add bucket-wise" [ 3; 3 ]
              (Array.to_list ns.Stats.depth_hist)
        | None -> Alcotest.fail "A has no stats");
    Alcotest.test_case "word_selectivity stays within [1/regions, 1]" `Quick
      (fun () ->
        let dense =
          Stats.of_entries
            [ mk_entry ~source:"d" ~length:10 ~stats:[ ("A", 2, 10000) ] () ]
        in
        Alcotest.(check bool)
          "dense clamps to 1" true
          (Stats.word_selectivity dense "A" <= 1.0);
        let sparse =
          Stats.of_entries
            [ mk_entry ~source:"s" ~length:10 ~stats:[ ("A", 100, 1) ] () ]
        in
        let s = Stats.word_selectivity sparse "A" in
        Alcotest.(check bool) "sparse floors at 1/regions" true (s >= 0.01));
  ]

(* ------------------------------------------------------------------ *)
(* Estimator safety: finite, non-negative, and the upper bound really
   bounds on random RIG-conforming instances where leaf cardinalities
   are exact. *)

let estimator_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"estimates are finite and non-negative on random expressions"
         QCheck.(make Gen.(int_bound 100000))
         (fun seed ->
           let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
           let names = Array.of_list (Ralg.Rig.names rig) in
           let e = Test_ralg.random_general prng names 4 in
           let safe stats =
             let est = Model.estimate stats e in
             let ok x = Float.is_finite x && x >= 0.0 in
             ok est.Model.rows && ok est.Model.upper && ok est.Model.cost
             && est.Model.cost = (Model.legacy stats e).Ralg.Cost.weighted
           in
           safe (Stats.of_instance inst) && safe (Stats.uniform ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"upper bound holds against actual evaluation"
         QCheck.(make Gen.(int_bound 100000))
         (fun seed ->
           let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
           let names = Array.of_list (Ralg.Rig.names rig) in
           let e = Test_ralg.random_general prng names 3 in
           let stats = Stats.of_instance inst in
           let actual =
             float_of_int (Pat.Region_set.cardinal (Ralg.Eval.eval_plain inst e))
           in
           let est = Model.estimate stats e in
           if actual > est.Model.upper +. 1e-9 then
             QCheck.Test.fail_reportf "seed %d: actual %g > upper %g on %s"
               seed actual est.Model.upper (Expr.to_string e);
           true));
  ]

(* ------------------------------------------------------------------ *)
(* Plan selection: every candidate the cost mode may pick denotes the
   same region set as the rules rewrite and the naive evaluation. *)

let planner_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"cost-chosen plan == rules plan == naive evaluation"
         QCheck.(make Gen.(int_bound 100000))
         (fun seed ->
           let rig, inst, prng = Test_ralg.Gen_instance.generate seed in
           let names = Array.of_list (Ralg.Rig.names rig) in
           let e = Test_ralg.random_general prng names 3 in
           let stats = Stats.of_instance inst in
           let naive = Ralg.Eval.eval_plain inst e in
           let rules = Ralg.Eval.eval_plain inst (Ralg.Optimizer.optimize rig e) in
           let d = Planner.choose ~stats ~rig e in
           let cost = Ralg.Eval.eval_plain inst d.Planner.chosen in
           if not (Pat.Region_set.equal naive rules) then
             QCheck.Test.fail_reportf "seed %d: rules differs on %s" seed
               (Expr.to_string e);
           if not (Pat.Region_set.equal naive cost) then
             QCheck.Test.fail_reportf
               "seed %d: cost-chosen %s (tag %s) differs on %s" seed
               (Expr.to_string d.Planner.chosen)
               d.Planner.tag (Expr.to_string e);
           d.Planner.considered >= 1));
    Alcotest.test_case "ties and uninformative stats degenerate to rules"
      `Quick (fun () ->
        let rig =
          Ralg.Rig.create ~names:[ "A"; "B" ] ~edges:[ ("A", "B") ]
        in
        let e = Expr.(name "A" >.. name "B") in
        let d = Planner.choose ~stats:(Stats.uniform ()) ~rig e in
        Alcotest.(check string) "rules wins ties" "rules" d.Planner.tag;
        Alcotest.(check bool)
          "chosen is the rules rewrite" true
          (Expr.equal d.Planner.chosen (Ralg.Optimizer.optimize rig e)));
    Alcotest.test_case "mode_of_string round-trips and rejects junk" `Quick
      (fun () ->
        Alcotest.(check bool)
          "rules" true
          (Planner.mode_of_string "rules" = Ok Planner.Rules);
        Alcotest.(check bool)
          "cost" true
          (Planner.mode_of_string "cost" = Ok Planner.Cost_based);
        Alcotest.(check bool)
          "junk rejected" true
          (Result.is_error (Planner.mode_of_string "greedy")));
  ]

(* ------------------------------------------------------------------ *)
(* Advisor *)

let advisor_items =
  [
    {
      Advise.query = "q1";
      schema = "s";
      workload = "w";
      count = 3;
      total_ms = 90.0;
    };
  ]

let advisor_tests =
  [
    Alcotest.test_case "recommends the index that removes a scan" `Quick
      (fun () ->
        (* without B the query parses the whole file; with B it is an
           exact single-name plan *)
        let compile ~index ~schema:_ _q =
          if List.mem "B" index then Ok [ `Index (Expr.name "B", true) ]
          else Ok [ `Scan ]
        in
        let recs =
          Advise.advise ~stats:(Stats.uniform ()) ~compile ~index:[ "A" ]
            ~indexable:[ "A"; "B" ] advisor_items
        in
        let adds =
          List.filter (fun r -> r.Advise.action = `Add) recs
        in
        (match adds with
        | [ r ] ->
            Alcotest.(check string) "adds B" "B" r.Advise.name;
            Alcotest.(check bool)
              "positive predicted saving" true (r.Advise.predicted_ms > 0.0);
            Alcotest.(check bool)
              "saving bounded by observed latency" true
              (r.Advise.predicted_ms <= 90.0);
            Alcotest.(check int) "one query affected" 1 r.Advise.queries
        | _ -> Alcotest.failf "expected exactly one addition");
        match List.filter (fun r -> r.Advise.action = `Drop) recs with
        | [ r ] -> Alcotest.(check string) "drops unused A" "A" r.Advise.name
        | _ -> Alcotest.fail "expected exactly one drop");
    Alcotest.test_case "covered plans beat uncovered ones" `Quick (fun () ->
        (* with only the root indexed the candidates are an uncovered
           superset; indexing the selected name makes the plan exact *)
        let compile ~index ~schema:_ _q =
          if List.mem "B" index then
            Ok [ `Index (Expr.(name "A" >. exactly "w" (name "B")), true) ]
          else Ok [ `Index (Expr.(exactly "w" (name "A")), false) ]
        in
        let recs =
          Advise.advise ~stats:(Stats.uniform ()) ~compile ~index:[ "A" ]
            ~indexable:[ "A"; "B" ] advisor_items
        in
        Alcotest.(check bool)
          "recommends indexing B" true
          (List.exists
             (fun r -> r.Advise.action = `Add && r.Advise.name = "B")
             recs));
    Alcotest.test_case "a served workload needs no changes" `Quick (fun () ->
        let compile ~index:_ ~schema:_ _q =
          Ok [ `Index (Expr.name "A", true) ]
        in
        let recs =
          Advise.advise ~stats:(Stats.uniform ()) ~compile ~index:[ "A" ]
            ~indexable:[ "A"; "B" ] advisor_items
        in
        Alcotest.(check int) "no recommendations" 0 (List.length recs));
    Alcotest.test_case "unparseable queries are skipped, not fatal" `Quick
      (fun () ->
        let compile ~index:_ ~schema:_ _q = Error "no parse" in
        let recs =
          Advise.advise ~stats:(Stats.uniform ()) ~compile ~index:[ "A" ]
            ~indexable:[ "A"; "B" ] advisor_items
        in
        (* nothing replayable: no additions; A cannot be shown used,
           so it is offered as a drop *)
        Alcotest.(check bool)
          "no additions" true
          (List.for_all (fun r -> r.Advise.action = `Drop) recs));
  ]

(* ------------------------------------------------------------------ *)
(* Catalog persistence of the new statistics *)

let catalog_tests =
  [
    Alcotest.test_case "depth histograms persist through the manifest" `Quick
      (fun () ->
        let dir = temp_dir () in
        let src = Filename.concat dir "app.log" in
        write_file src (Workload.Log_gen.generate (Workload.Log_gen.with_size 8));
        let catdir = Filename.concat dir "cat" in
        let cat = or_fail (Oqf_catalog.Catalog.init catdir) in
        let _ = or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" src) in
        (* a fresh open reads back from disk *)
        let cat2 = or_fail (Oqf_catalog.Catalog.open_dir catdir) in
        match Oqf_catalog.Catalog.entries cat2 with
        | [ e ] ->
            Alcotest.(check bool) "has stats" true (e.stats <> []);
            Alcotest.(check bool) "has depths" true (e.depths <> []);
            (match List.assoc_opt "Entry" e.depths with
            | Some h ->
                Alcotest.(check bool)
                  "the root name nests at depth 0 only" true
                  (Array.length h = 1 && h.(0) > 0)
            | None -> Alcotest.fail "no Entry histogram");
            let stats = Stats.of_entries [ e ] in
            Alcotest.(check bool)
              "children read as one level below the root" true
              (Stats.depth_overlap stats ~outer:"Entry" ~inner:"Level" > 0.9)
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
    Alcotest.test_case "stats-free legacy manifest still serves" `Quick
      (fun () ->
        let dir = temp_dir () in
        let src = Filename.concat dir "app.log" in
        write_file src (Workload.Log_gen.generate (Workload.Log_gen.with_size 5));
        let catdir = Filename.concat dir "cat" in
        let cat = or_fail (Oqf_catalog.Catalog.init catdir) in
        let _ = or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" src) in
        (* simulate a manifest written before rstat/rdepth existed *)
        let manifest = Filename.concat catdir "CATALOG" in
        let keep line =
          let starts p =
            String.length line >= String.length p
            && String.sub line 0 (String.length p) = p
          in
          not (starts "rstat " || starts "rdepth ")
        in
        let stripped =
          read_file manifest |> String.split_on_char '\n' |> List.filter keep
          |> String.concat "\n"
        in
        write_file manifest stripped;
        let cat2 = or_fail (Oqf_catalog.Catalog.open_dir catdir) in
        (match Oqf_catalog.Catalog.entries cat2 with
        | [ e ] ->
            Alcotest.(check bool) "no stats" true (e.stats = []);
            Alcotest.(check bool) "no depths" true (e.depths = []);
            let stats = Stats.of_entries [ e ] in
            Alcotest.(check (float 0.0))
              "cards fall back to the default"
              (float_of_int Stats.default_card)
              (Stats.card stats "Entry")
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        (* and the corpus still answers queries from the legacy entry *)
        let corpus =
          or_fail (Oqf.Corpus.of_catalog cat2 ~schema:"log")
        in
        let q =
          or_fail
            (Result.map_error
               (Format.asprintf "%a" Odb.Query_parser.pp_error)
               (Odb.Query_parser.parse "SELECT e.Level FROM Entries e"))
        in
        let out =
          or_fail (Oqf.Corpus.run ~plan_mode:Planner.Cost_based corpus q)
        in
        Alcotest.(check bool)
          "rows came back" true
          (out.Oqf.Corpus.rows <> []));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: both planner modes produce identical rows on a real
   query, and the cost mode records its decisions in the outcome. *)

let execute_tests =
  [
    Alcotest.test_case "plan modes agree on rows; cost mode explains itself"
      `Quick (fun () ->
        let view = Fschema.Log_schema.view in
        let text =
          Pat.Text.of_string
            (Workload.Log_gen.generate (Workload.Log_gen.with_size 12))
        in
        let src = or_fail (Oqf.Execute.make_source_full view text) in
        let q =
          or_fail
            (Result.map_error
               (Format.asprintf "%a" Odb.Query_parser.pp_error)
               (Odb.Query_parser.parse
                  "SELECT e.Level FROM Entries e WHERE e.Service = \"db\""))
        in
        let rules = or_fail (Oqf.Execute.run src q) in
        let cost =
          or_fail (Oqf.Execute.run ~plan_mode:Planner.Cost_based src q)
        in
        Alcotest.(check bool)
          "same rows" true
          (rules.Oqf.Execute.rows = cost.Oqf.Execute.rows);
        Alcotest.(check bool)
          "cost mode recorded decisions" true
          (cost.Oqf.Execute.decisions <> []);
        Alcotest.(check bool)
          "rules mode recorded none" true
          (rules.Oqf.Execute.decisions = []);
        Alcotest.(check bool)
          "estimated cost accumulated" true
          (cost.Oqf.Execute.est_cost > 0.0));
  ]

let suites =
  [
    ("cost.stats", stats_tests);
    ("cost.estimator", estimator_tests);
    ("cost.planner", planner_tests);
    ("cost.advisor", advisor_tests);
    ("cost.catalog", catalog_tests);
    ("cost.execute", execute_tests);
  ]
