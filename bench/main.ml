(* Benchmark harness: regenerates the paper's quantitative claims.

   "Optimizing Queries on Files" (Consens & Milo, SIGMOD 1994) reports
   no numbered result tables; its evaluation is the set of performance
   claims the sections argue.  Each experiment below regenerates one
   claim as a table: the workload, the competing strategies, and the
   measured series.  EXPERIMENTS.md records claim-vs-measured.

   Absolute numbers depend on this substrate (a from-scratch OCaml
   engine); the shapes — who wins, how the gap scales — are the
   reproduction target.

   Run with: dune exec bench/main.exe *)

let say fmt = Format.printf fmt

let heading id claim =
  say "@.========================================================@.";
  say "%s — %s@." id claim;
  say "========================================================@."

(* Wall-clock milliseconds of [f], best of [repeat]. *)
let time_ms ?(repeat = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let or_die = function Ok x -> x | Error e -> failwith e

(* Corpus and source caches so repeated experiments share setup work. *)
let bibtex_cache : (int, Pat.Text.t) Hashtbl.t = Hashtbl.create 8

let bibtex_text n =
  match Hashtbl.find_opt bibtex_cache n with
  | Some t -> t
  | None ->
      let t =
        Pat.Text.of_string
          (Workload.Bibtex_gen.generate (Workload.Bibtex_gen.with_size n))
      in
      Hashtbl.add bibtex_cache n t;
      t

let source_cache : (int * string, Oqf.Execute.source) Hashtbl.t =
  Hashtbl.create 8

let bibtex_source ?index n =
  let view = Fschema.Bibtex_schema.view in
  let index =
    match index with
    | Some i -> i
    | None -> Fschema.Grammar.indexable view.Fschema.View.grammar
  in
  let key = (n, String.concat "," index) in
  match Hashtbl.find_opt source_cache key with
  | Some s -> s
  | None ->
      let s = or_die (Oqf.Execute.make_source view (bibtex_text n) ~index) in
      Hashtbl.add source_cache key s;
      s

let q_chang =
  Odb.Query_parser.parse_exn
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}

(* ------------------------------------------------------------------ *)
(* E1 — §3.2 / Theorem 3.6: the optimized inclusion expression beats
   the naive translation. *)

let e1 () =
  heading "E1" "optimized vs naive inclusion expression (§3.2, Thm 3.6)";
  say "query: %s@." (Odb.Query.to_string q_chang);
  say "index-phase evaluation only (the phase the optimizer targets)@.";
  say "%8s | %26s | %26s | %8s@." "refs" "naive (ms, region cmps)"
    "optimized (ms, region cmps)" "speedup";
  let exprs_for src =
    let plan = or_die (Oqf.Compile.compile src.Oqf.Execute.env q_chang) in
    match plan.Oqf.Plan.var_plans with
    | [ { Oqf.Plan.candidates = Oqf.Plan.Expr e; _ } ] ->
        (e, Ralg.Optimizer.optimize src.Oqf.Execute.query_rig e)
    | _ -> failwith "unexpected plan shape"
  in
  List.iter
    (fun n ->
      let src = bibtex_source n in
      let naive_e, opt_e = exprs_for src in
      let eval e () =
        let before = Stdx.Stats.(value region_comparisons) in
        let r = Ralg.Eval.eval src.Oqf.Execute.instance e in
        (r, Stdx.Stats.(value region_comparisons) - before)
      in
      let (naive_set, naive_cmps), naive_ms = time_ms ~repeat:5 (eval naive_e) in
      let (opt_set, opt_cmps), opt_ms = time_ms ~repeat:5 (eval opt_e) in
      assert (Pat.Region_set.equal naive_set opt_set);
      say "%8d | %14.3f %11d | %14.3f %11d | %7.2fx@." n naive_ms naive_cmps
        opt_ms opt_cmps (naive_ms /. opt_ms))
    [ 100; 400; 1600; 6400 ];
  let naive_e, opt_e = exprs_for (bibtex_source 100) in
  say "naive expression:     %a@." Ralg.Expr.pp naive_e;
  say "optimized expression: %a@." Ralg.Expr.pp opt_e

(* ------------------------------------------------------------------ *)
(* E2 — §1/§5.1: index evaluation vs the standard database
   implementation (full parse + load + evaluate). *)

let e2 () =
  heading "E2" "indexed evaluation vs standard database implementation (§5.1)";
  let selective =
    Odb.Query_parser.parse_exn
      (Printf.sprintf
         {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "%s"|}
         (Workload.Vocab.last_name 60))
  in
  List.iter
    (fun (label, q) ->
      say "@.%s: %s@." label (Odb.Query.to_string q);
      say "%8s | %8s | %26s | %26s | %8s@." "refs" "file KB"
        "indexed (ms, answers, B)" "database (ms, parsed B)" "speedup";
      List.iter
        (fun n ->
          let text = bibtex_text n in
          let src = bibtex_source n in
          let idx_r, idx_ms =
            time_ms (fun () -> or_die (Oqf.Execute.run src q))
          in
          let (base_rows, base_stats), base_ms =
            time_ms ~repeat:1 (fun () ->
                or_die
                  (Oqf.Execute.run_baseline Fschema.Bibtex_schema.view text q))
          in
          assert (List.length base_rows = idx_r.Oqf.Execute.answers_count);
          say "%8d | %8d | %9.2f %5d %10d | %15.2f %10d | %7.1fx@." n
            (Pat.Text.length text / 1024)
            idx_ms idx_r.Oqf.Execute.answers_count
            idx_r.Oqf.Execute.stats.bytes_parsed base_ms
            base_stats.Stdx.Stats.bytes_parsed (base_ms /. idx_ms))
        [ 50; 200; 800; 3200 ])
    [
      ("selective query (rare author)", selective);
      ("unselective query (most frequent author)", q_chang);
    ]

(* ------------------------------------------------------------------ *)
(* E3 — §6: partial indexing computes a candidate superset, then
   parses only the candidates. *)

let e3 () =
  heading "E3" "partial indexing: candidates vs answers (§6, Fig. 3)";
  let n = 800 in
  say "query: %s  (corpus: %d refs, %d KB)@." (Odb.Query.to_string q_chang) n
    (Pat.Text.length (bibtex_text n) / 1024);
  say "%-44s | %6s | %6s | %7s | %9s | %8s@." "index set" "names" "cands"
    "answers" "parsed B" "time ms";
  List.iter
    (fun (label, index) ->
      let src = bibtex_source ?index n in
      let r, ms = time_ms ~repeat:5 (fun () -> or_die (Oqf.Execute.run src q_chang)) in
      say "%-44s | %6d | %6d | %7d | %9d | %8.2f@." label
        (List.length r.Oqf.Execute.plan.Oqf.Plan.index_names)
        r.Oqf.Execute.candidates_count r.Oqf.Execute.answers_count
        r.Oqf.Execute.stats.bytes_parsed ms)
    [
      ("full indexing", None);
      ( "{Reference, Authors, Name, Last_Name}",
        Some [ "Reference"; "Authors"; "Name"; "Last_Name" ] );
      ( "{Reference, Key, Last_Name}  (paper Fig. 3)",
        Some [ "Reference"; "Key"; "Last_Name" ] );
      ("{Reference}", Some [ "Reference" ]);
    ]

(* ------------------------------------------------------------------ *)
(* E4 — §7: the trade-off between the amount of indexing and the work
   at query time. *)

let e4 () =
  heading "E4" "efficiency vs amount of indexing (§7)";
  let n = 800 in
  let view = Fschema.Bibtex_schema.view in
  let advised = or_die (Oqf.Advisor.required_indices view q_chang) in
  say "query: %s@." (Odb.Query.to_string q_chang);
  say "advisor's sufficient set: {%s}@." (String.concat ", " advised);
  say "%-44s | %9s | %6s | %9s | %8s | %5s@." "index set" "regions" "cands"
    "parsed B" "time ms" "exact";
  List.iter
    (fun (label, index) ->
      let src = bibtex_source ?index n in
      let r, ms = time_ms ~repeat:5 (fun () -> or_die (Oqf.Execute.run src q_chang)) in
      say "%-44s | %9d | %6d | %9d | %8.2f | %5b@." label
        (Pat.Instance.total_regions src.Oqf.Execute.instance)
        r.Oqf.Execute.candidates_count r.Oqf.Execute.stats.bytes_parsed ms
        r.Oqf.Execute.plan.Oqf.Plan.exact)
    [
      ("{Reference}", Some [ "Reference" ]);
      ("{Reference, Last_Name}", Some [ "Reference"; "Last_Name" ]);
      ("advisor set (exactness threshold)", Some advised);
      ("advisor + Name, Editors", Some (advised @ [ "Name"; "Editors" ]));
      ("full indexing", None);
    ];
  (* §7's final refinement: index only the last names that reside in an
     Authors region.  Two indexed names answer the query exactly with a
     hand-written simple-inclusion expression. *)
  let scoped =
    or_die
      (Fschema.View.index_file_specs view (bibtex_text n)
         ~specs:
           [
             Fschema.View.Plain "Reference";
             Fschema.View.Scoped
               {
                 name = "Last_Name";
                 within = "Authors";
                 alias = "Author_Last_Name";
               };
           ])
  in
  let run_scoped () =
    let before = Stdx.Stats.snapshot () in
    let wi = Pat.Instance.word_index scoped in
    let hits =
      Pat.Region_set.including
        (Pat.Instance.find scoped "Reference")
        (Pat.Word_index.select_exact wi "Chang"
           (Pat.Instance.find scoped "Author_Last_Name"))
    in
    (* materialise the answers like the other rows do *)
    Pat.Region_set.iter
      (fun (r : Pat.Region.t) ->
        match
          Fschema.Parser_engine.parse_at Fschema.Bibtex_schema.grammar
            (bibtex_text n) ~symbol:"Reference" ~start:r.start ~stop:r.stop
        with
        | Ok _ -> ()
        | Error _ -> failwith "scoped candidate does not parse")
      hits;
    let after = Stdx.Stats.snapshot () in
    (hits, Stdx.Stats.diff ~before ~after)
  in
  let (hits, st), ms = time_ms ~repeat:5 run_scoped in
  say "%-44s | %9d | %6d | %9d | %8.2f | %5b@."
    "scoped {Reference, Last_Name within Authors}"
    (Pat.Instance.total_regions scoped)
    (Pat.Region_set.cardinal hits)
    st.Stdx.Stats.bytes_parsed ms true

(* ------------------------------------------------------------------ *)
(* E5 — §5.3: path expressions with variables are cheaper on region
   indices than by enumeration or OODB-style traversal. *)

let e5 () =
  heading "E5" "path variables *X: inclusion vs enumeration (§5.3)";
  let n = 800 in
  let src = bibtex_source n in
  let text = bibtex_text n in
  let q_star =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|}
  in
  let q_enum =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r
        WHERE r.Authors.Name.Last_Name = "Chang"
           OR r.Editors.Name.Last_Name = "Chang"|}
  in
  let star_r, star_ms =
    time_ms (fun () -> or_die (Oqf.Execute.run src q_star))
  in
  let enum_r, enum_ms =
    time_ms (fun () -> or_die (Oqf.Execute.run src q_enum))
  in
  let (base_rows, _), base_ms =
    time_ms ~repeat:1 (fun () ->
        or_die (Oqf.Execute.run_baseline Fschema.Bibtex_schema.view text q_star))
  in
  assert (star_r.Oqf.Execute.rows = enum_r.Oqf.Execute.rows);
  assert (List.length base_rows = star_r.Oqf.Execute.answers_count);
  say "%-34s | %8s | %8s | %10s@." "strategy" "answers" "time ms" "index ops";
  say "%-34s | %8d | %8.2f | %10d@." "*X as single inclusion"
    star_r.Oqf.Execute.answers_count star_ms star_r.Oqf.Execute.stats.index_ops;
  say "%-34s | %8d | %8.2f | %10d@." "enumerated paths (union)"
    enum_r.Oqf.Execute.answers_count enum_ms enum_r.Oqf.Execute.stats.index_ops;
  say "%-34s | %8d | %8.2f | %10s@." "OODB traversal (baseline)"
    (List.length base_rows) base_ms "-";
  List.iter
    (fun (v, e) -> say "evaluated (%s): %a@." v Ralg.Expr.pp e)
    star_r.Oqf.Execute.evaluated

(* ------------------------------------------------------------------ *)
(* E6 — §5.2: index-assisted select–project–join. *)

let e6 () =
  heading "E6" "index-assisted join (§5.2)";
  let q_join =
    Odb.Query_parser.parse_exn
      {|SELECT r.Key FROM References r, References s
        WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name
        AND r.Year = "1982"|}
  in
  say "query: editors of 1982 books who author elsewhere (self-join)@.";
  say "%8s | %27s | %27s | %20s@." "refs" "assisted (ms, cands, B)"
    "unassisted (ms, cands, B)" "database (ms, B)";
  List.iter
    (fun n ->
      let src = bibtex_source n in
      let text = bibtex_text n in
      let a_r, a_ms = time_ms (fun () -> or_die (Oqf.Execute.run src q_join)) in
      let u_r, u_ms =
        time_ms (fun () ->
            or_die (Oqf.Execute.run ~join_assist:false src q_join))
      in
      let (b_rows, b_stats), b_ms =
        time_ms ~repeat:1 (fun () ->
            or_die
              (Oqf.Execute.run_baseline Fschema.Bibtex_schema.view text q_join))
      in
      assert (a_r.Oqf.Execute.rows = u_r.Oqf.Execute.rows);
      assert (List.length b_rows = a_r.Oqf.Execute.answers_count);
      say "%8d | %9.2f %5d %10d | %9.2f %5d %10d | %9.2f %9d@." n a_ms
        a_r.Oqf.Execute.candidates_count a_r.Oqf.Execute.stats.bytes_parsed u_ms
        u_r.Oqf.Execute.candidates_count u_r.Oqf.Execute.stats.bytes_parsed b_ms
        b_stats.Stdx.Stats.bytes_parsed)
    [ 200; 800 ]

(* ------------------------------------------------------------------ *)
(* E7 — §5.3: transitive closure as one inclusion test on self-nested
   regions. *)

let e7 () =
  heading "E7" "closure over self-nested sections (§5.3)";
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT s.Heading FROM Sections s WHERE s.*X.Para CONTAINS "index"|}
  in
  say
    "query: headings of sections transitively containing the word (any \
     depth); the region plan is index-only@.";
  say "%6s | %8s | %8s | %18s | %18s@." "depth" "sections" "answers"
    "regions (ms)" "database (ms)";
  List.iter
    (fun depth ->
      let text =
        Pat.Text.of_string
          (Workload.Sgml_gen.generate
             {
               (Workload.Sgml_gen.with_depth depth) with
               top_sections = 8;
               fanout = 3;
             })
      in
      let src =
        or_die (Oqf.Execute.make_source_full Fschema.Sgml_schema.view text)
      in
      let r, r_ms = time_ms (fun () -> or_die (Oqf.Execute.run src q)) in
      let (b_rows, _), b_ms =
        time_ms ~repeat:1 (fun () ->
            or_die (Oqf.Execute.run_baseline Fschema.Sgml_schema.view text q))
      in
      assert (List.length b_rows = r.Oqf.Execute.answers_count);
      let sections =
        Pat.Region_set.cardinal
          (Pat.Instance.find src.Oqf.Execute.instance "Section")
      in
      say "%6d | %8d | %8d | %18.2f | %18.2f@." depth sections
        r.Oqf.Execute.answers_count r_ms b_ms)
    [ 3; 5; 7 ]

(* ------------------------------------------------------------------ *)
(* E8 — §3.1: direct inclusion is significantly more expensive than
   simple inclusion, and the cost grows with nesting depth. *)

let e8 () =
  heading "E8" "cost of direct inclusion vs simple inclusion (§3.1)";
  say "operands: Section vs Para region sets of growing nesting depth@.";
  say "%6s | %8s | %16s | %16s | %14s@." "depth" "regions" "> (ms, cmps)"
    ">d (ms, cmps)" "layered >d ms";
  List.iter
    (fun depth ->
      let text =
        Pat.Text.of_string
          (Workload.Sgml_gen.generate
             {
               (Workload.Sgml_gen.with_depth depth) with
               top_sections = 6;
               fanout = 3;
             })
      in
      let inst =
        or_die
          (Fschema.View.index_file Fschema.Sgml_schema.view text
             ~keep:(Fschema.Grammar.indexable Fschema.Sgml_schema.grammar))
      in
      let sections = Pat.Instance.find inst "Section" in
      let paras = Pat.Instance.find inst "Para" in
      let ctx = Pat.Instance.universe inst in
      let cmps f =
        let before = Stdx.Stats.(value region_comparisons) in
        let r = f () in
        (r, Stdx.Stats.(value region_comparisons) - before)
      in
      let (simple, simple_cmps), simple_ms =
        time_ms (fun () ->
            cmps (fun () -> Pat.Region_set.including sections paras))
      in
      let (direct, direct_cmps), direct_ms =
        time_ms (fun () ->
            cmps (fun () ->
                Pat.Region_set.directly_including ~context:ctx sections paras))
      in
      let layered, layered_ms =
        time_ms (fun () ->
            Ralg.Eval.direct_including_layered ~context:ctx sections paras)
      in
      assert (Pat.Region_set.equal direct layered);
      assert (Pat.Region_set.subset direct simple);
      say "%6d | %8d | %9.2f %6d | %9.2f %6d | %14.2f@." depth
        (Pat.Region_set.cardinal ctx)
        simple_ms simple_cmps direct_ms direct_cmps layered_ms)
    [ 2; 4; 6; 8; 10 ];
  (* Worst case: one wide region over n points, each shadowed by a
     tight wrapper placed at the very end of its blocking window —
     deciding "nothing strictly in between" then scans quadratically,
     while simple inclusion stays near-linear. *)
  say "@.worst case: wide region over n late-blocked points@.";
  say "%8s | %16s | %16s@." "n" "> (ms, cmps)" ">d (ms, cmps)";
  List.iter
    (fun n ->
      let windows = Pat.Region_set.of_pairs [ (0, (3 * n) + 3) ] in
      let points =
        Pat.Region_set.of_pairs (List.init n (fun i -> ((3 * i) + 1, (3 * i) + 2)))
      in
      let wrappers =
        Pat.Region_set.of_pairs (List.init n (fun i -> (3 * i, (3 * i) + 3)))
      in
      let ctx =
        Pat.Region_set.union windows (Pat.Region_set.union points wrappers)
      in
      let cmps f =
        let before = Stdx.Stats.(value region_comparisons) in
        let r = f () in
        (r, Stdx.Stats.(value region_comparisons) - before)
      in
      let (_, simple_cmps), simple_ms =
        time_ms (fun () ->
            cmps (fun () -> Pat.Region_set.including windows points))
      in
      let (_, direct_cmps), direct_ms =
        time_ms (fun () ->
            cmps (fun () ->
                Pat.Region_set.directly_including ~context:ctx windows points))
      in
      say "%8d | %9.2f %6d | %9.2f %6d@." n simple_ms simple_cmps direct_ms
        direct_cmps)
    [ 250; 500; 1000; 2000 ]

(* ------------------------------------------------------------------ *)
(* B1 — index construction cost.  Not a paper claim (the paper assumes
   indexing "is a service given by the underlying text indexing
   system"); reported for operational context: how much one-time work
   the query-time savings cost. *)

let b1 () =
  heading "B1" "index construction cost (context; not a paper claim)";
  say "%8s | %8s | %12s | %14s | %12s@." "refs" "file KB" "parse ms"
    "suffix arr ms" "regions";
  List.iter
    (fun n ->
      let text = bibtex_text n in
      let (tree, inst), parse_ms =
        time_ms ~repeat:1 (fun () ->
            match
              Fschema.Parser_engine.parse Fschema.Bibtex_schema.grammar text
            with
            | Ok tree ->
                ( tree,
                  Fschema.Builder.instance_of_tree text tree
                    ~keep:
                      (Fschema.Grammar.indexable Fschema.Bibtex_schema.grammar)
                )
            | Error _ -> failwith "generator output must parse")
      in
      ignore tree;
      let _, sa_ms =
        time_ms ~repeat:1 (fun () -> Pat.Word_index.build text)
      in
      say "%8d | %8d | %12.2f | %14.2f | %12d@." n
        (Pat.Text.length text / 1024)
        parse_ms sa_ms
        (Pat.Instance.total_regions inst))
    [ 200; 800; 3200 ]

(* ------------------------------------------------------------------ *)
(* C1 — catalog maintenance: cold build vs warm cache vs incremental
   refresh of an appended log.  Not a paper claim (the paper assumes
   indexing is a service of the text system); this measures what the
   catalog subsystem adds: persisted indices served from an LRU cache,
   and append-only maintenance that tokenizes only the tail. *)

(* experiment id -> series of ms measurements, dumped as JSON at exit
   so the perf trajectory is trackable across PRs *)
let json_series : (string * float list ref) list ref = ref []

let record id ms =
  match List.assoc_opt id !json_series with
  | Some cell -> cell := !cell @ [ ms ]
  | None -> json_series := !json_series @ [ (id, ref [ ms ]) ]

let emit_json ?(only_prefix = "") path =
  let series =
    List.filter
      (fun (id, _) -> String.starts_with ~prefix:only_prefix id)
      !json_series
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n";
      let n = List.length series in
      List.iteri
        (fun i (id, cell) ->
          Printf.fprintf oc "  %S: [%s]%s\n" id
            (String.concat ", " (List.map (Printf.sprintf "%.3f") !cell))
            (if i = n - 1 then "" else ","))
        series;
      output_string oc "}\n");
  say "wrote %s@." path

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "oqf_bench_c1_%d_%d" (Unix.getpid ()) !counter)
    in
    Sys.mkdir d 0o755;
    d

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let c1 () =
  heading "C1" "catalog: cold build vs warm cache vs incremental refresh";
  let n = 3000 and appended = 300 in
  let base = Workload.Log_gen.generate (Workload.Log_gen.with_size n) in
  (* Log_gen draws per entry in sequence, so the n-entry corpus is a
     byte prefix of the (n + k)-entry one: overwriting the file with
     the longer generation is exactly an append. *)
  let grown = Workload.Log_gen.generate (Workload.Log_gen.with_size (n + appended)) in
  assert (String.length grown > String.length base);
  assert (String.sub grown 0 (String.length base) = base);
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  say "log: %d entries (%d KB), appended: %d entries (%d KB)@." n
    (String.length base / 1024)
    appended
    ((String.length grown - String.length base) / 1024)
  ;
  say "%8s | %10s | %10s | %10s | %12s | %11s@." "trial" "build ms"
    "cold q ms" "warm q ms" "incr refr ms" "rebuild ms";
  (* trial 0 warms the allocator and page cache and is not recorded *)
  for trial = 0 to 3 do
    let dir = fresh_dir () in
    let log_path = Filename.concat dir "app.log" in
    write_file log_path base;
    let cat_dir = Filename.concat dir "cat" in
    let cat = or_die (Oqf_catalog.Catalog.init cat_dir) in
    let t0 = Unix.gettimeofday () in
    let (_ : Oqf_catalog.Catalog.entry) =
      or_die (Oqf_catalog.Catalog.add cat ~schema:"log" log_path)
    in
    let build_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (* a fresh open: the cache is empty, the first query loads from disk
       (and re-derives the word index), the second is served from the
       cache *)
    let cat = or_die (Oqf_catalog.Catalog.open_dir cat_dir) in
    let run_query () =
      let corpus = or_die (Oqf.Corpus.of_catalog cat ~schema:"log") in
      or_die (Oqf.Corpus.run corpus q)
    in
    let _, cold_ms = time_ms ~repeat:1 run_query in
    let _, warm_ms = time_ms ~repeat:1 run_query in
    (* grow the file; refresh maintains the index incrementally *)
    write_file log_path grown;
    let refr, incr_ms =
      time_ms ~repeat:1 (fun () ->
          or_die (Oqf_catalog.Catalog.refresh cat log_path))
    in
    (match refr with
    | Oqf_catalog.Catalog.Extended _ -> ()
    | r ->
        failwith
          (Format.asprintf "expected incremental extension, got %a"
             Oqf_catalog.Catalog.pp_refresh r));
    (* force the full path on the same grown file: drop the index file,
       refresh must rebuild from scratch *)
    let entry = Option.get (Oqf_catalog.Catalog.find cat log_path) in
    Sys.remove (Filename.concat cat_dir entry.Oqf_catalog.Catalog.index_file);
    Oqf_catalog.Instance_cache.remove (Oqf_catalog.Catalog.cache cat) log_path;
    let rebuilt, full_ms =
      time_ms ~repeat:1 (fun () ->
          or_die (Oqf_catalog.Catalog.refresh cat log_path))
    in
    (match rebuilt with
    | Oqf_catalog.Catalog.Rebuilt _ -> ()
    | r ->
        failwith
          (Format.asprintf "expected full rebuild, got %a"
             Oqf_catalog.Catalog.pp_refresh r));
    if trial > 0 then begin
      record "C1_cold_build_ms" build_ms;
      record "C1_cold_query_ms" cold_ms;
      record "C1_warm_query_ms" warm_ms;
      record "C1_incremental_refresh_ms" incr_ms;
      record "C1_full_rebuild_ms" full_ms
    end;
    say "%8d | %10.2f | %10.2f | %10.2f | %12.2f | %11.2f@." trial build_ms
      cold_ms warm_ms incr_ms full_ms
  done;
  let cache_stats =
    (* the warm/cold split above, summarised *)
    "cold query pays the disk load + word-index rebuild; warm query is \
     served from the LRU instance cache"
  in
  say "%s@." cache_stats

(* ------------------------------------------------------------------ *)
(* O1 — observability overhead.  Tracing must be zero-cost when
   disabled: the public eval entry points check a single ref and
   dispatch to the uninstrumented path, so disabled-tracing time must
   stay within 5% of calling that path directly.  Traced time (events
   streamed to a JSON-lines sink on /dev/null) is reported for
   context, not bounded. *)

let o1 () =
  heading "O1" "tracing overhead: disabled dispatch vs uninstrumented path";
  let n = 1600 in
  let src = bibtex_source n in
  let opt_e =
    let plan = or_die (Oqf.Compile.compile src.Oqf.Execute.env q_chang) in
    match plan.Oqf.Plan.var_plans with
    | [ { Oqf.Plan.candidates = Oqf.Plan.Expr e; _ } ] ->
        Ralg.Optimizer.optimize src.Oqf.Execute.query_rig e
    | _ -> failwith "unexpected plan shape"
  in
  assert (not (Obs.Trace.enabled ()));
  let iters = 40 in
  let eval_loop f () =
    for _ = 1 to iters do
      ignore (f src.Oqf.Execute.instance opt_e)
    done
  in
  say "E1 optimized expression on %d refs, %d evaluations per sample@." n
    iters;
  let (), plain_ms = time_ms ~repeat:7 (eval_loop Ralg.Eval.eval_shared_plain) in
  let (), disabled_ms = time_ms ~repeat:7 (eval_loop Ralg.Eval.eval_shared) in
  let devnull = open_out "/dev/null" in
  Obs.Trace.set_sink (Some (Obs.Sink.jsonl devnull));
  let (), traced_ms = time_ms ~repeat:3 (eval_loop Ralg.Eval.eval_shared) in
  Obs.Trace.set_sink None;
  close_out devnull;
  record "O1_eval_plain_ms" plain_ms;
  record "O1_eval_disabled_ms" disabled_ms;
  record "O1_eval_traced_ms" traced_ms;
  let overhead = (disabled_ms -. plain_ms) /. plain_ms *. 100.0 in
  say "%-36s %10.3f ms@." "uninstrumented (eval_shared_plain)" plain_ms;
  say "%-36s %10.3f ms@." "tracing disabled (eval_shared)" disabled_ms;
  say "%-36s %10.3f ms@." "tracing enabled (jsonl -> /dev/null)" traced_ms;
  say "disabled-tracing overhead: %+.2f%% — bound <= 5%%: %s@." overhead
    (if disabled_ms <= plain_ms *. 1.05 then "PASS" else "FAIL");
  (* the same bound on the whole query path: Execute.run with and
     without a sink, E1 query mix *)
  let q_star =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|}
  in
  let run_mix () =
    List.iter
      (fun q -> ignore (or_die (Oqf.Execute.run src q)))
      [ q_chang; q_star ]
  in
  let (), untraced_ms = time_ms ~repeat:7 run_mix in
  let devnull = open_out "/dev/null" in
  Obs.Trace.set_sink (Some (Obs.Sink.jsonl devnull));
  let (), traced_q_ms = time_ms ~repeat:3 run_mix in
  Obs.Trace.set_sink None;
  close_out devnull;
  record "O1_query_untraced_ms" untraced_ms;
  record "O1_query_traced_ms" traced_q_ms;
  say "query mix: untraced %.3f ms, traced %.3f ms (%.2fx)@." untraced_ms
    traced_q_ms (traced_q_ms /. untraced_ms)

(* ------------------------------------------------------------------ *)
(* P1 — parallel execution.  An 8-file log corpus (the C1 scale spread
   across files) evaluated at 1, 2 and 4 domains, plus the result
   cache on a repeated-query batch.  The speedup is bounded by the
   cores the container actually has — P1_cores records it so the JSON
   is interpretable; on a single-core host the 2- and 4-domain rows
   measure the pool's overhead, not a speedup. *)

let p1 () =
  heading "P1" "parallel corpus execution (1/2/4 domains) + result cache";
  let cores = Domain.recommended_domain_count () in
  record "P1_cores" (float_of_int cores);
  say "available cores (recommended_domain_count): %d@." cores;
  let files =
    List.init 8 (fun i ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size 1200) with seed = 50 + i }) ))
  in
  let corpus = or_die (Oqf.Corpus.make_full Fschema.Log_schema.view files) in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let seq = or_die (Oqf.Corpus.run corpus q) in
  say "corpus: 8 log files, %d answer rows@."
    (List.length seq.Oqf.Corpus.rows);
  say "%8s | %10s | %8s@." "domains" "ms" "speedup";
  say "---------+------------+---------@.";
  let base_ms = ref 0.0 in
  List.iter
    (fun jobs ->
      let r, ms =
        time_ms ~repeat:3 (fun () ->
            or_die (Exec.Driver.run_parallel ~jobs corpus q))
      in
      (* whatever the domain count, the merged rows are the sequential
         rows — the soundness claim the qcheck suite proves in small *)
      assert (r.Exec.Driver.rows = seq.Oqf.Corpus.rows);
      if jobs = 1 then base_ms := ms;
      record (Printf.sprintf "P1_jobs%d_ms" jobs) ms;
      say "%8d | %10.2f | %7.2fx@." jobs ms (!base_ms /. ms))
    [ 1; 2; 4 ];
  (* the result cache on a repeated-query batch: 6 distinct queries,
     each asked 4 times -> 18 hits / 6 misses at steady state *)
  let distinct =
    List.map Odb.Query_parser.parse_exn
      [
        {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
        {|SELECT e.Service FROM Entries e WHERE e.Level = "WARN"|};
        {|SELECT e.Pid FROM Entries e WHERE e.Service = "auth"|};
        {|SELECT e FROM Entries e WHERE e.Service = "cache"|};
        {|SELECT e.Level FROM Entries e WHERE e.Service = "db"|};
        {|SELECT e.Service FROM Entries e WHERE e.Message CONTAINS "timeout"|};
      ]
  in
  let batch = List.concat (List.init 4 (fun _ -> distinct)) in
  let cache = Exec.Rcache.create () in
  let results, batch_ms =
    time_ms ~repeat:1 (fun () ->
        Exec.Driver.run_batch ~jobs:(min 4 cores) ~cache corpus batch)
  in
  List.iter
    (fun (_, r) -> match r with Ok _ -> () | Error e -> failwith e)
    results;
  let s = Exec.Rcache.stats cache in
  let hit_rate =
    float_of_int s.Exec.Rcache.hits
    /. float_of_int (s.Exec.Rcache.hits + s.Exec.Rcache.misses)
  in
  record "P1_batch_ms" batch_ms;
  record "P1_cache_hit_rate" hit_rate;
  say "batch of %d queries (%d distinct): %.2f ms, cache %a (hit rate %.2f)@."
    (List.length batch) (List.length distinct) batch_ms Exec.Rcache.pp_stats s
    hit_rate;
  (* cold vs warm: the same query straight through the cache *)
  let cache2 = Exec.Rcache.create () in
  let _, cold_ms =
    time_ms ~repeat:1 (fun () ->
        or_die (Exec.Driver.run_parallel ~jobs:1 ~cache:cache2 corpus q))
  in
  let _, warm_ms =
    time_ms ~repeat:1 (fun () ->
        or_die (Exec.Driver.run_parallel ~jobs:1 ~cache:cache2 corpus q))
  in
  record "P1_cache_cold_ms" cold_ms;
  record "P1_cache_warm_ms" warm_ms;
  say "cold %.3f ms -> warm (cached) %.3f ms@." cold_ms warm_ms

(* ------------------------------------------------------------------ *)
(* R1 — cost of the robustness layer.  The retry wrappers and fault
   hooks sit on every catalog read, index load and pool task, so they
   must be close to free when nothing is failing.  Three conditions on
   the P1 corpus: fault layer uninstalled, armed at probability zero
   (every site still consults the seeded schedule under its lock — the
   worst-case bookkeeping), and the full degradation ladder exercised
   with every pool task failing.  The acceptance gate is armed-at-zero
   overhead <= 5% over uninstalled. *)

let r1 () =
  heading "R1" "robustness layer overhead (target: no-fault cost <= 5%)";
  let files =
    List.init 8 (fun i ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size 1200) with seed = 50 + i }) ))
  in
  let corpus = or_die (Oqf.Corpus.make_full Fschema.Log_schema.view files) in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let run ?fail_policy () =
    or_die (Exec.Driver.run_parallel ~jobs ?fail_policy corpus q)
  in
  Stdx.Fault.set None;
  let reference, off_ms = time_ms ~repeat:7 run in
  let armed =
    match Stdx.Fault.parse "transient:0.0,seed:1" with
    | Ok c -> c
    | Error e -> failwith e
  in
  Stdx.Fault.set (Some armed);
  let armed_out, armed_ms = time_ms ~repeat:7 run in
  (* the ladder, end to end: every task fails permanently, every file
     comes back through the coordinator retry and the naive scan *)
  (match Stdx.Fault.parse "permanent:1.0,only:pool.task" with
  | Ok c -> Stdx.Fault.set (Some c)
  | Error e -> failwith e);
  Stdx.Retry.Breaker.reset_all ();
  let degraded_out, degrade_ms =
    time_ms ~repeat:3 (fun () ->
        Stdx.Retry.Breaker.reset_all ();
        run ~fail_policy:Exec.Driver.Degrade ())
  in
  Stdx.Fault.set None;
  Stdx.Retry.Breaker.reset_all ();
  assert (armed_out.Exec.Driver.rows = reference.Exec.Driver.rows);
  assert (degraded_out.Exec.Driver.rows = reference.Exec.Driver.rows);
  assert (degraded_out.Exec.Driver.degraded <> []);
  let overhead_pct = (armed_ms -. off_ms) /. off_ms *. 100.0 in
  record "R1_off_ms" off_ms;
  record "R1_armed_zero_ms" armed_ms;
  record "R1_degrade_ladder_ms" degrade_ms;
  record "R1_overhead_pct" overhead_pct;
  say "fault layer off:        %8.2f ms@." off_ms;
  say "armed at zero:          %8.2f ms (%+.1f%%)@." armed_ms overhead_pct;
  say "full degradation ladder:%8.2f ms (rows identical, %d recovery actions)@."
    degrade_ms
    (List.length degraded_out.Exec.Driver.degraded);
  say "R1 overhead check: %s@."
    (if overhead_pct <= 5.0 then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* O2 — telemetry overhead: the same parallel query with the query log
   installed and labelled metrics recording, vs bare.  The qlog
   flushes per record but only fsyncs on rotation, so the armed cost
   should stay in the noise.  Acceptance gate: overhead <= 5%. *)

let o2 () =
  heading "O2" "telemetry overhead: qlog + labelled metrics (target <= 5%)";
  let files =
    List.init 8 (fun i ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size 1200) with seed = 90 + i }) ))
  in
  let corpus = or_die (Oqf.Corpus.make_full Fschema.Log_schema.view files) in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let run ?qctx () = or_die (Exec.Driver.run_parallel ~jobs ?qctx corpus q) in
  let reference, off_ms = time_ms ~repeat:7 run in
  let log =
    or_die (Obs.Qlog.open_log (Filename.concat (fresh_dir ()) "bench.qlog"))
  in
  Obs.Qlog.install (Some log);
  let armed_out, armed_ms =
    time_ms ~repeat:7 (fun () ->
        run
          ~qctx:
            {
              Obs.Qlog.trace_id = Obs.Qlog.gen_trace_id ();
              workload = "bench";
            }
          ())
  in
  Obs.Qlog.install None;
  Obs.Qlog.close log;
  assert (armed_out.Exec.Driver.rows = reference.Exec.Driver.rows);
  (* every armed run left one durable, parseable record *)
  let records, skipped =
    match Obs.Qlog.fold (Obs.Qlog.path log) ~init:0 ~f:(fun n _ -> n + 1) with
    | Ok r -> r
    | Error e -> failwith e
  in
  assert (skipped = 0);
  assert (records = 7);
  let overhead_pct = (armed_ms -. off_ms) /. off_ms *. 100.0 in
  record "O2_off_ms" off_ms;
  record "O2_armed_ms" armed_ms;
  record "O2_overhead_pct" overhead_pct;
  say "telemetry off:      %8.2f ms@." off_ms;
  say "qlog + metrics on:  %8.2f ms (%+.1f%%), %d qlog records@." armed_ms
    overhead_pct records;
  say "O2 overhead check: %s@."
    (if overhead_pct <= 5.0 then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* CB1 — the cost-based planner vs the rule-based default, and the
   advisor's predicted savings vs measured deltas.  The cost planner
   picks among semantics-equivalent candidates (the Prop 3.5 closure),
   so on these workloads it can only lose by planning overhead (the
   per-run statistics sweep and plan enumeration) or a bad estimate;
   the acceptance gate is cost-mode workload total <= rules-mode total
   x 1.05.  The advisor then replays the measured workload under a
   root-only index, and its top recommendation's predicted saving is
   compared against the delta actually measured after building the
   recommended index — EXPERIMENTS CB1 requires agreement within 2x. *)

let cb1_log_queries =
  [
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e.Level FROM Entries e WHERE e.Service = "db"|};
    {|SELECT e.Message FROM Entries e WHERE e.Level = "WARN"|};
    {|SELECT e FROM Entries e WHERE e.Level = "FATAL"|};
  ]

let cb1_bibtex_queries =
  [
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
    {|SELECT r.Key FROM References r WHERE r.Year = "1982"|};
    {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
  ]

let cb1 () =
  heading "CB1"
    "cost-based planning vs rules (gate <= 5%); advisor predicted vs measured";
  let files =
    List.init 8 (fun i ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size 1200) with seed = 130 + i }) ))
  in
  let log_corpus =
    or_die (Oqf.Corpus.make_full Fschema.Log_schema.view files)
  in
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  let bib = bibtex_source 400 in
  let rules_total = ref 0.0 and cost_total = ref 0.0 in
  let short qt = if String.length qt <= 44 then qt else String.sub qt 0 44 in
  say "%-44s | %9s | %9s | %7s@." "query" "rules ms" "cost ms" "delta";
  let bench_pair label run =
    let rows_rules, ms_rules =
      time_ms ~repeat:5 (fun () -> run Oqf_cost.Planner.Rules)
    in
    let rows_cost, ms_cost =
      time_ms ~repeat:5 (fun () -> run Oqf_cost.Planner.Cost_based)
    in
    (* both modes pick from rewrite-equivalent plans only *)
    assert (rows_rules = rows_cost);
    rules_total := !rules_total +. ms_rules;
    cost_total := !cost_total +. ms_cost;
    say "%-44s | %9.3f | %9.3f | %+6.1f%%@." label ms_rules ms_cost
      ((ms_cost -. ms_rules) /. ms_rules *. 100.0)
  in
  List.iter
    (fun qt ->
      let q = Odb.Query_parser.parse_exn qt in
      bench_pair (short qt) (fun mode ->
          (or_die (Exec.Driver.run_parallel ~jobs ~plan_mode:mode log_corpus q))
            .Exec.Driver.rows))
    cb1_log_queries;
  List.iter
    (fun qt ->
      let q = Odb.Query_parser.parse_exn qt in
      bench_pair (short qt) (fun mode ->
          (or_die (Oqf.Execute.run ~plan_mode:mode bib q)).Oqf.Execute.rows))
    cb1_bibtex_queries;
  let overhead_pct = (!cost_total -. !rules_total) /. !rules_total *. 100.0 in
  record "CB1_rules_ms" !rules_total;
  record "CB1_cost_ms" !cost_total;
  record "CB1_overhead_pct" overhead_pct;
  say "workload totals: rules %.2f ms, cost %.2f ms (%+.1f%%)@." !rules_total
    !cost_total overhead_pct;
  say "CB1 planner check: %s@."
    (if overhead_pct <= 5.0 then "PASS" else "FAIL");
  (* --- advisor: predicted vs measured ----------------------------- *)
  let dir = fresh_dir () in
  let view = Fschema.Log_schema.view in
  let corpus_text =
    Workload.Log_gen.generate
      { (Workload.Log_gen.with_size 3000) with seed = 131 }
  in
  let log_path = Filename.concat dir "cb1.log" in
  write_file log_path corpus_text;
  let catdir = Filename.concat dir "cat" in
  let cat = or_die (Oqf_catalog.Catalog.init catdir) in
  ignore (or_die (Oqf_catalog.Catalog.add cat ~schema:"log" log_path));
  let stats = Oqf_cost.Stats.of_entries (Oqf_catalog.Catalog.entries cat) in
  let text = Pat.Text.of_string corpus_text in
  (* nothing indexed: every replayed query answers from a whole-file
     parse, the advisor's worst case and the one §7 opens with *)
  let base_index = [] in
  let timed src qt =
    let q = Odb.Query_parser.parse_exn qt in
    snd (time_ms ~repeat:5 (fun () -> or_die (Oqf.Execute.run src q)))
  in
  let src_base = or_die (Oqf.Execute.make_source view text ~index:base_index) in
  let base_ms = List.map (fun qt -> (qt, timed src_base qt)) cb1_log_queries in
  let items =
    List.map
      (fun (qt, ms) ->
        {
          Oqf_cost.Advise.query = qt;
          schema = "log";
          workload = "bench";
          count = 1;
          total_ms = ms;
        })
      base_ms
  in
  let compile ~index ~schema:_ q_text =
    match Odb.Query_parser.parse q_text with
    | Error e -> Error (Format.asprintf "%a" Odb.Query_parser.pp_error e)
    | Ok q -> (
        match Oqf.Compile.compile (Oqf.Compile.env view ~index) q with
        | Error e -> Error e
        | Ok plan ->
            Ok
              (List.map
                 (fun (vp : Oqf.Plan.var_plan) ->
                   match vp.Oqf.Plan.candidates with
                   | Oqf.Plan.All -> `Scan
                   | Oqf.Plan.Empty -> `Empty
                   | Oqf.Plan.Expr e -> `Index (e, vp.Oqf.Plan.covered))
                 plan.Oqf.Plan.var_plans))
  in
  let recs = Oqf_cost.Advise.advise ~stats ~compile ~index:base_index items in
  let top =
    match
      List.filter (fun r -> r.Oqf_cost.Advise.action = `Add) recs
    with
    | r :: _ -> r
    | [] -> failwith "advisor returned no addition on an uncovered workload"
  in
  say "top recommendation: add %s — %s@." top.Oqf_cost.Advise.name
    top.Oqf_cost.Advise.detail;
  let src_plus =
    or_die
      (Oqf.Execute.make_source view text
         ~index:(top.Oqf_cost.Advise.name :: base_index))
  in
  let plus_total =
    List.fold_left (fun acc (qt, _) -> acc +. timed src_plus qt) 0.0 base_ms
  in
  let base_total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 base_ms in
  let measured = Float.max 0.001 (base_total -. plus_total) in
  let predicted = top.Oqf_cost.Advise.predicted_ms in
  let ratio = predicted /. measured in
  record "CB1_advise_predicted_ms" predicted;
  record "CB1_advise_measured_ms" measured;
  record "CB1_advise_ratio" ratio;
  say "workload un-indexed: %.2f ms; after adding %s: %.2f ms@." base_total
    top.Oqf_cost.Advise.name plus_total;
  say "predicted saving %.2f ms, measured %.2f ms (ratio %.2fx)@." predicted
    measured ratio;
  say "CB1 advisor check: %s@."
    (if ratio >= 0.5 && ratio <= 2.0 then "PASS (within 2x)" else "FAIL")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment kernel. *)

let bechamel_tests () =
  let open Bechamel in
  let src200 = bibtex_source 200 in
  let src61 = bibtex_source ~index:[ "Reference"; "Key"; "Last_Name" ] 200 in
  let q_star =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|}
  in
  let q_join =
    Odb.Query_parser.parse_exn
      {|SELECT r.Key FROM References r, References s
        WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name
        AND r.Year = "1982"|}
  in
  let sgml_text =
    Pat.Text.of_string
      (Workload.Sgml_gen.generate (Workload.Sgml_gen.with_depth 5))
  in
  let sgml_src =
    or_die (Oqf.Execute.make_source_full Fschema.Sgml_schema.view sgml_text)
  in
  let q_closure =
    Odb.Query_parser.parse_exn
      {|SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "index"|}
  in
  let sections = Pat.Instance.find sgml_src.Oqf.Execute.instance "Section" in
  let paras = Pat.Instance.find sgml_src.Oqf.Execute.instance "Para" in
  let ctx = Pat.Instance.universe sgml_src.Oqf.Execute.instance in
  [
    Test.make ~name:"e1_naive_expression"
      (Staged.stage (fun () ->
           or_die (Oqf.Execute.run ~optimize:false src200 q_chang)));
    Test.make ~name:"e1_optimized_expression"
      (Staged.stage (fun () -> or_die (Oqf.Execute.run src200 q_chang)));
    Test.make ~name:"e2_database_baseline"
      (Staged.stage (fun () ->
           or_die
             (Oqf.Execute.run_baseline Fschema.Bibtex_schema.view
                (bibtex_text 200) q_chang)));
    Test.make ~name:"e3_partial_index_query"
      (Staged.stage (fun () -> or_die (Oqf.Execute.run src61 q_chang)));
    Test.make ~name:"e4_advisor"
      (Staged.stage (fun () ->
           or_die
             (Oqf.Advisor.required_indices Fschema.Bibtex_schema.view q_chang)));
    Test.make ~name:"e5_star_path"
      (Staged.stage (fun () -> or_die (Oqf.Execute.run src200 q_star)));
    Test.make ~name:"e6_assisted_join"
      (Staged.stage (fun () -> or_die (Oqf.Execute.run src200 q_join)));
    Test.make ~name:"e7_closure_query"
      (Staged.stage (fun () -> or_die (Oqf.Execute.run sgml_src q_closure)));
    Test.make ~name:"e8_simple_inclusion"
      (Staged.stage (fun () -> Pat.Region_set.including sections paras));
    Test.make ~name:"e8_direct_inclusion"
      (Staged.stage (fun () ->
           Pat.Region_set.directly_including ~context:ctx sections paras));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  heading "Bechamel" "per-experiment micro-benchmarks (ns/run, OLS)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock m in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> say "%-32s %14.0f ns/run@." (Test.Elt.name elt) t
          | _ -> say "%-32s (no estimate)@." (Test.Elt.name elt))
        (Test.elements test))
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* S1 — serving queries: a warm `oqf serve` daemon vs repeated CLI
   invocation.  The daemon opens the catalog once and keeps the
   instance and result caches warm across requests; every CLI
   invocation pays process start, catalog open and cache warm-up.
   Measured client-side over the Unix-domain socket at 1/8/64
   concurrent clients, plus an overload run (max_active=1, queue=0)
   showing a full admission queue answers typed rejections, not
   hangs. *)

let s1_queries =
  [|
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e.Service FROM Entries e WHERE e.Level = "WARN"|};
    {|SELECT e FROM Entries e WHERE e.Level = "FATAL"|};
  |]

let s1_pct sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let s1_fail = function Ok x -> x | Error e -> failwith e

let s1_setup () =
  let dir = fresh_dir () in
  let catdir = Filename.concat dir "cat" in
  let cat = s1_fail (Oqf_catalog.Catalog.init catdir) in
  for i = 0 to 3 do
    let p = Filename.concat dir (Printf.sprintf "node%d.log" i) in
    write_file p
      (Workload.Log_gen.generate
         { (Workload.Log_gen.with_size 600) with seed = 7000 + i });
    ignore (s1_fail (Oqf_catalog.Catalog.add cat ~schema:"log" p))
  done;
  (dir, catdir)

let s1_query_req text =
  Serve.Protocol.Query
    {
      schema = "log";
      text;
      timeout_ms = None;
      fail_policy = None;
      force = false;
      workload = "";
    }

(* [clients] threads, [reps] requests each; returns (sorted latencies
   in ms, wall-clock ms for the whole level) *)
let s1_run_daemon ~socket ~clients ~reps =
  let lats = Array.make clients [] in
  let t0 = Obs.Trace.now_ms () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c = s1_fail (Serve.Client.connect ~wait_ms:5000. socket) in
            let acc = ref [] in
            for r = 0 to reps - 1 do
              let q = s1_queries.((ci + r) mod Array.length s1_queries) in
              let t = Obs.Trace.now_ms () in
              ignore (s1_fail (Serve.Client.request c (s1_query_req q)));
              acc := (Obs.Trace.now_ms () -. t) :: !acc
            done;
            Serve.Client.close c;
            lats.(ci) <- !acc)
          ())
  in
  List.iter Thread.join threads;
  let wall = Obs.Trace.now_ms () -. t0 in
  let all = Array.of_list (List.concat (Array.to_list lats)) in
  Array.sort compare all;
  (all, wall)

let s1_cli_exe () =
  let p =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/oqf_cli.exe"
  in
  if Sys.file_exists p then Some p else None

let s1_run_cli ~exe ~catdir ~clients ~reps =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let lats = Array.make clients [] in
  let t0 = Obs.Trace.now_ms () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let acc = ref [] in
            for r = 0 to reps - 1 do
              let q = s1_queries.((ci + r) mod Array.length s1_queries) in
              let t = Obs.Trace.now_ms () in
              let pid =
                Unix.create_process exe
                  [| exe; "catalog"; "query"; "-c"; catdir; "-s"; "log"; q |]
                  Unix.stdin devnull devnull
              in
              ignore (Unix.waitpid [] pid);
              acc := (Obs.Trace.now_ms () -. t) :: !acc
            done;
            lats.(ci) <- !acc)
          ())
  in
  List.iter Thread.join threads;
  let wall = Obs.Trace.now_ms () -. t0 in
  Unix.close devnull;
  let all = Array.of_list (List.concat (Array.to_list lats)) in
  Array.sort compare all;
  (all, wall)

let s1_overload ~catdir dir =
  let socket = Filename.concat dir "ovl.sock" in
  let config =
    {
      (Serve.Server.default_config ~catalog_dir:catdir ~socket_path:socket)
      with
      Serve.Server.max_active = 1;
      max_queue = 0;
      jobs = 1;
    }
  in
  let server = s1_fail (Serve.Server.start config) in
  let served = Atomic.make 0 and rejected = Atomic.make 0 in
  let threads =
    List.init 8 (fun ci ->
        Thread.create
          (fun () ->
            let c = s1_fail (Serve.Client.connect ~wait_ms:5000. socket) in
            for r = 0 to 49 do
              let q = s1_queries.((ci + r) mod Array.length s1_queries) in
              match s1_fail (Serve.Client.request c (s1_query_req q)) with
              | events -> (
                  match List.rev events with
                  | Serve.Protocol.Done _ :: _ -> Atomic.incr served
                  | Serve.Protocol.Overloaded _ :: _ -> Atomic.incr rejected
                  | _ -> ())
            done;
            Serve.Client.close c)
          ())
  in
  List.iter Thread.join threads;
  Serve.Server.request_shutdown server;
  Serve.Server.wait server;
  (Atomic.get served, Atomic.get rejected)

let s1 () =
  heading "S1" "oqf serve: warm daemon vs repeated CLI invocation";
  let dir, catdir = s1_setup () in
  let socket = Filename.concat dir "oqf.sock" in
  let config =
    {
      (Serve.Server.default_config ~catalog_dir:catdir ~socket_path:socket)
      with
      Serve.Server.max_active = 128;
      max_queue = 256;
      jobs = 4;
    }
  in
  let server = s1_fail (Serve.Server.start config) in
  (* warm: touch every query once so the daemon's caches are hot *)
  ignore (s1_run_daemon ~socket ~clients:1 ~reps:(Array.length s1_queries));
  say "%10s | %8s | %10s | %10s | %10s@." "mode" "clients" "p50 ms"
    "p99 ms" "qps";
  let daemon_p50_c8 = ref 0. in
  List.iter
    (fun (clients, reps) ->
      let lats, wall = s1_run_daemon ~socket ~clients ~reps in
      let p50 = s1_pct lats 50. and p99 = s1_pct lats 99. in
      let qps = float_of_int (Array.length lats) /. (wall /. 1000.) in
      if clients = 8 then daemon_p50_c8 := p50;
      record (Printf.sprintf "S1_daemon_p50_ms_c%d" clients) p50;
      record (Printf.sprintf "S1_daemon_p99_ms_c%d" clients) p99;
      record (Printf.sprintf "S1_daemon_qps_c%d" clients) qps;
      say "%10s | %8d | %10.3f | %10.3f | %10.0f@." "daemon" clients p50 p99
        qps)
    [ (1, 100); (8, 40); (64, 8) ];
  Serve.Server.request_shutdown server;
  Serve.Server.wait server;
  (match s1_cli_exe () with
  | None -> say "(oqf_cli.exe not found next to the bench; skipping CLI baseline)@."
  | Some exe ->
      List.iter
        (fun (clients, reps) ->
          let lats, wall = s1_run_cli ~exe ~catdir ~clients ~reps in
          let p50 = s1_pct lats 50. and p99 = s1_pct lats 99. in
          let qps = float_of_int (Array.length lats) /. (wall /. 1000.) in
          record (Printf.sprintf "S1_cli_p50_ms_c%d" clients) p50;
          record (Printf.sprintf "S1_cli_p99_ms_c%d" clients) p99;
          record (Printf.sprintf "S1_cli_qps_c%d" clients) qps;
          if clients = 8 && !daemon_p50_c8 > 0. then begin
            let speedup = p50 /. !daemon_p50_c8 in
            record "S1_speedup_p50_c8" speedup;
            say "%10s | %8d | %10.3f | %10.3f | %10.0f@." "cli" clients p50
              p99 qps;
            say "warm daemon p50 at 8 clients is %.1fx better than repeated CLI%s@."
              speedup
              (if speedup >= 5. then " (>= 5x)" else " (< 5x!)")
          end
          else
            say "%10s | %8d | %10.3f | %10.3f | %10.0f@." "cli" clients p50
              p99 qps)
        [ (1, 5); (8, 3) ]);
  let served, rejected = s1_overload ~catdir dir in
  record "S1_overload_served" (float_of_int served);
  record "S1_overload_rejected" (float_of_int rejected);
  say
    "overload (max_active=1, queue=0, 8 clients x 50): %d served, %d typed \
     rejections, 0 hangs@."
    served rejected

(* ------------------------------------------------------------------ *)
(* CT1 — containment-aware caching on an overlapping batch workload,
   plus the cross-query static pass.  The workload has the shape a
   dashboard produces: a broad sweep per class of interest, then
   narrowing refinements whose WHERE conjuncts are supersets of an
   earlier query's.  With containment off (exact keys only — the
   pre-containment cache) every distinct query text evaluates; with it
   on, each refinement is answered by filtering the cached superset's
   rows (byte-identical per DESIGN §14).  Gates: >= 20% fewer
   evaluated queries at identical per-query rows, and the
   [oqf check --queries] cross-query pass under 100 ms on the
   examples-corpus query files. *)

let ct1_queries =
  [
    {|SELECT e FROM Entries e|};
    {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e FROM Entries e WHERE e.Level = "ERROR" AND e.Service = "db"|};
    {|SELECT e FROM Entries e WHERE e.Level = "WARN"|};
    {|SELECT e FROM Entries e WHERE e.Service = "auth"|};
    {|SELECT e FROM Entries e WHERE e.Level = "FATAL"|};
    {|SELECT e FROM Entries e WHERE e.Service = "auth" AND e.Level = "INFO"|};
    (* projected select: outside the containment contract, exact-only *)
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e FROM Entries e WHERE e.Message CONTAINS "timeout"|};
  ]

(* mirrors examples/queries/*.queries (read from disk when run from
   the workspace root, so drift is caught by the cram/CI lint) *)
let ct1_example_queries =
  [
    ( Fschema.Bibtex_schema.view,
      "examples/queries/bibtex.queries",
      [
        {|SELECT r.Key FROM References r|};
        {|SELECT r.Key FROM References r WHERE r.Year STARTS WITH "19"|};
        {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
        {|SELECT r.Title FROM References r WHERE r.Key = "Ref0001"|};
      ] );
    ( Fschema.Log_schema.view,
      "examples/queries/log.queries",
      [
        {|SELECT e FROM Entries e|};
        {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
        {|SELECT e.Pid FROM Entries e WHERE e.Service = "auth"|};
      ] );
  ]

let ct1_read_queries path fallback =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let rec loop acc =
      match input_line ic with
      | line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then loop acc
          else loop (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    loop []
  end
  else fallback

let ct1 () =
  heading "CT1"
    "containment-aware batch caching (gate: >= 20% fewer evaluations)";
  let files =
    List.init 6 (fun i ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size 800) with seed = 310 + i }) ))
  in
  let corpus = or_die (Oqf.Corpus.make_full Fschema.Log_schema.view files) in
  let queries = List.map Odb.Query_parser.parse_exn ct1_queries in
  let run_workload ~containment =
    let cache = Exec.Rcache.create ~containment () in
    let results, ms =
      time_ms ~repeat:1 (fun () ->
          Exec.Driver.run_batch ~jobs:1 ~cache corpus queries)
    in
    let rows =
      List.map
        (fun (q, r) ->
          match r with
          | Ok o -> (Odb.Query.to_string q, o.Exec.Driver.rows)
          | Error e -> failwith e)
        results
    in
    let s = Exec.Rcache.stats cache in
    (* a containment-served probe counts an exact miss first, so the
       queries actually evaluated are the misses nothing absorbed *)
    let evaluated = s.Exec.Rcache.misses - s.Exec.Rcache.containment_hits in
    (rows, evaluated, s.Exec.Rcache.containment_hits, ms)
  in
  let base_rows, base_eval, _, base_ms = run_workload ~containment:false in
  let cont_rows, cont_eval, cont_hits, cont_ms =
    run_workload ~containment:true
  in
  (* the gate is meaningless unless both runs answer identically *)
  assert (base_rows = cont_rows);
  let reduction_pct =
    float_of_int (base_eval - cont_eval) /. float_of_int base_eval *. 100.0
  in
  record "CT1_baseline_evaluated" (float_of_int base_eval);
  record "CT1_containment_evaluated" (float_of_int cont_eval);
  record "CT1_containment_hits" (float_of_int cont_hits);
  record "CT1_reduction_pct" reduction_pct;
  say "batch of %d queries: baseline evaluated %d (%.2f ms); containment \
       evaluated %d, served %d by filtering (%.2f ms)@."
    (List.length queries) base_eval base_ms cont_eval cont_hits cont_ms;
  say "CT1 evaluation-reduction check: %s (%.0f%%, gate >= 20%%)@."
    (if reduction_pct >= 20.0 then "PASS" else "FAIL")
    reduction_pct;
  (* --- cross-query static pass on the examples corpus -------------- *)
  let batches =
    List.map
      (fun (view, path, fallback) ->
        let texts = ct1_read_queries path fallback in
        let index = Fschema.Grammar.indexable view.Fschema.View.grammar in
        let env = Oqf.Compile.env view ~index in
        let query_rig =
          Ralg.Rig.partial env.Oqf.Compile.full_rig ~keep:index
        in
        (env, query_rig, texts))
      ct1_example_queries
  in
  let check_all () =
    List.fold_left
      (fun acc (env, query_rig, texts) ->
        let labelled =
          List.mapi
            (fun i t -> (Printf.sprintf "query %d" (i + 1), t))
            texts
        in
        let per_query =
          List.concat_map
            (fun (_, t) ->
              (Oqf.Check.query ~text:t env ~query_rig
                 (Odb.Query_parser.parse_exn t))
                .Oqf.Check.diagnostics)
            labelled
        in
        let cross =
          Oqf.Check.cross_query
            (List.map
               (fun (l, t) -> (l, Odb.Query_parser.parse_exn t))
               labelled)
        in
        acc + List.length per_query + List.length cross)
      0 batches
  in
  let (_ : int), check_ms = time_ms ~repeat:5 check_all in
  record "CT1_check_ms" check_ms;
  say "cross-query static pass over the examples corpus: %.2f ms@." check_ms;
  say "CT1 check-latency check: %s (gate < 100 ms)@."
    (if check_ms < 100.0 then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* W1 — live corpora: watch-mode ingest under MVCC snapshot isolation.
   Three gates, all CI-enforced:
   1. kill -9 (injected crash, exit 137) at every commit/retire fault
      site leaves a catalog that reopens, repairs and answers;
   2. warm query p95 while the watcher ingests stays within 2x of the
      idle warm p95;
   3. zero failed or partially-read queries, and a snapshot pinned
      before the writer starts answers byte-identically, across 50
      concurrent refresh commits. *)

let w1_query =
  Odb.Query_parser.parse_exn
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}

let w1_grow file sizes i =
  sizes.(i) <- sizes.(i) + 20;
  write_file file
    (Workload.Log_gen.generate (Workload.Log_gen.with_size sizes.(i)))

let w1_setup n_files entries =
  let dir = fresh_dir () in
  let files =
    Array.init n_files (fun i ->
        Filename.concat dir (Printf.sprintf "w%d.log" i))
  in
  let sizes = Array.init n_files (fun i -> entries + (7 * i)) in
  Array.iteri
    (fun i f ->
      write_file f
        (Workload.Log_gen.generate (Workload.Log_gen.with_size sizes.(i))))
    files;
  let catdir = Filename.concat dir "cat" in
  let cat = or_die (Oqf_catalog.Catalog.init catdir) in
  Array.iter
    (fun f ->
      ignore
        (or_die (Oqf_catalog.Catalog.add cat ~schema:"log" f)
          : Oqf_catalog.Catalog.entry))
    files;
  (catdir, files, sizes, cat)

let w1_rows_image corpus =
  match Oqf.Corpus.run corpus w1_query with
  | Error e -> Error e
  | Ok out ->
      Ok
        (String.concat "\n"
           (List.map
              (fun (f, row) ->
                f ^ "|"
                ^ String.concat "," (List.map Odb.Value.to_display_string row))
              out.Oqf.Corpus.rows))

(* Fork a child that installs [spec] and refreshes; the injected crash
   exits it with 137 exactly as SIGKILL would mid-commit.  The parent
   then reopens, repairs and queries the survivor.  Runs before any
   domain or thread is spawned, so the fork is safe. *)
let w1_crash_phase () =
  let catdir, files, sizes, _cat = w1_setup 1 400 in
  let log = files.(0) in
  let ok = ref true in
  List.iter
    (fun spec ->
      w1_grow log sizes 0;
      (* don't let buffered output be flushed twice across the fork *)
      Format.printf "@?";
      flush_all ();
      match Unix.fork () with
      | 0 ->
          (match Stdx.Fault.parse spec with
          | Error _ -> Unix._exit 1
          | Ok cfg -> Stdx.Fault.set (Some cfg));
          (match Oqf_catalog.Catalog.open_dir catdir with
          | Error _ -> Unix._exit 1
          | Ok cat ->
              ignore (Oqf_catalog.Catalog.refresh cat log);
              (* for gen.retire the commit completes before the crash
                 site fires; force a retirement pass *)
              ignore (Oqf_catalog.Catalog.retire_unreferenced cat));
          Unix._exit 0
      | pid ->
          let _, status = Unix.waitpid [] pid in
          let killed = status = Unix.WEXITED 137 in
          if not killed then begin
            ok := false;
            say "  %-20s did not crash (%s)@." spec
              (match status with
              | Unix.WEXITED n -> Printf.sprintf "exit %d" n
              | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
              | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
          end;
          (match Oqf_catalog.Catalog.open_dir catdir with
          | Error e ->
              ok := false;
              say "  %-20s catalog did not reopen: %s@." spec e
          | Ok cat -> (
              let actions = Oqf_catalog.Catalog.repair cat in
              match
                Result.bind (Oqf.Corpus.of_catalog cat ~schema:"log")
                  w1_rows_image
              with
              | Ok _ ->
                  say
                    "  %-20s killed=137, reopened; repair took %d action(s); \
                     query ok@."
                    spec (List.length actions)
              | Error e ->
                  ok := false;
                  say "  %-20s recovery query failed: %s@." spec e)))
    [ "crash:gen.commit@1"; "crash:gen.commit@2"; "crash:gen.retire@1" ];
  !ok

let w1 () =
  heading "W1"
    "live ingest: crash-safe commits, query p95 under ingest, snapshot \
     stability";
  let crash_ok = w1_crash_phase () in
  record "W1_crash_recovered" (if crash_ok then 1. else 0.);
  say "W1 crash-recovery check: %s@." (if crash_ok then "PASS" else "FAIL");
  (* --- live phase: reader thread vs watcher-driven writer ---------- *)
  let catdir, files, sizes, cat = w1_setup 3 300 in
  ignore (catdir : string);
  let lock = Mutex.create () in
  (* serve-style reader: pin per query, cache the built corpus keyed by
     generation, so queries within one generation are warm and only the
     first query after a commit rebuilds *)
  let corpus_cache = ref None in
  let query_once () =
    let t0 = Unix.gettimeofday () in
    let r =
      Oqf_catalog.Catalog.with_snapshot cat (fun snap ->
          let gen = Oqf_catalog.Catalog.snapshot_generation snap in
          let corpus =
            match !corpus_cache with
            | Some (g, c) when g = gen -> Ok c
            | _ -> (
                match Oqf.Corpus.of_snapshot snap ~schema:"log" with
                | Error e -> Error e
                | Ok (_, _ :: _) -> Error "a pinned file degraded"
                | Ok (c, []) ->
                    corpus_cache := Some (gen, c);
                    Ok c)
          in
          Result.bind corpus w1_rows_image)
    in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  (* warm the reader before the writer starts *)
  for _ = 1 to 5 do
    ignore (query_once ())
  done;
  (* pin now: this snapshot must answer byte-identically after all 50
     commits land *)
  let pinned = Oqf_catalog.Catalog.pin cat in
  let pinned_image () =
    match Oqf.Corpus.of_snapshot pinned ~schema:"log" with
    | Error e -> Error e
    | Ok (corpus, _) -> w1_rows_image corpus
  in
  let reference = match pinned_image () with Ok s -> s | Error e -> failwith e in
  let commits = 50 in
  let commit_lats = ref [] in
  let writer_done = Atomic.make false in
  (* the production watcher runs in its own domain (Watch.start) and
     polls on an interval; mirror both — true parallelism, with an
     aggressive 100ms cadence (the serve default is 500ms) *)
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to commits do
          let j = (i - 1) mod Array.length files in
          w1_grow files.(j) sizes j;
          let t0 = Unix.gettimeofday () in
          let (_ : Oqf_catalog.Watch.report) =
            Oqf_catalog.Watch.scan ~lock cat
          in
          commit_lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !commit_lats;
          Unix.sleepf 0.1
        done;
        Atomic.set writer_done true)
  in
  let lats = ref [] and failures = ref [] in
  while not (Atomic.get writer_done) do
    let r, ms = query_once () in
    lats := ms :: !lats;
    match r with Ok _ -> () | Error e -> failures := e :: !failures
  done;
  Domain.join writer;
  (* idle baseline over the SAME (final) corpus, writer quiet — the
     corpus grew during ingest, so a pre-ingest baseline would charge
     data growth to ingest interference *)
  for _ = 1 to 5 do
    ignore (query_once ())
  done;
  let idle = Array.init 60 (fun _ -> snd (query_once ())) in
  Array.sort compare idle;
  let idle_p95 = s1_pct idle 95. in
  record "W1_idle_p95_ms" idle_p95;
  let ingest = Array.of_list !lats in
  Array.sort compare ingest;
  let ingest_p95 = s1_pct ingest 95. in
  let ratio = if idle_p95 > 0. then ingest_p95 /. idle_p95 else 0. in
  let commit_sorted = Array.of_list !commit_lats in
  Array.sort compare commit_sorted;
  record "W1_ingest_p95_ms" ingest_p95;
  record "W1_ingest_ratio" ratio;
  record "W1_commit_p95_ms" (s1_pct commit_sorted 95.);
  record "W1_queries_during_ingest" (float_of_int (Array.length ingest));
  record "W1_failed_queries" (float_of_int (List.length !failures));
  say
    "idle warm p95 %.3f ms; during %d watcher commits: %d queries, p50 %.3f \
     p90 %.3f p95 %.3f p99 %.3f max %.3f ms (p95 %.2fx idle), commit p95 \
     %.3f ms@."
    idle_p95 commits (Array.length ingest) (s1_pct ingest 50.)
    (s1_pct ingest 90.) ingest_p95 (s1_pct ingest 99.)
    ingest.(Array.length ingest - 1)
    ratio
    (s1_pct commit_sorted 95.);
  say "W1 ingest-latency check: %s (gate <= 2x idle p95)@."
    (if ratio <= 2.0 && Array.length ingest > 0 then "PASS" else "FAIL");
  (* stability: the pre-writer snapshot still answers byte-identically,
     and nothing failed or read a half-committed corpus meanwhile *)
  let stable =
    match pinned_image () with
    | Ok s -> s = reference
    | Error e ->
        say "  pinned re-read failed: %s@." e;
        false
  in
  Oqf_catalog.Catalog.release pinned;
  List.iter (fun e -> say "  failed query: %s@." e) !failures;
  record "W1_snapshot_stable" (if stable then 1. else 0.);
  say "W1 snapshot-stability check: %s (%d commits, %d failed queries, \
       pinned rows %s)@."
    (if stable && !failures = [] then "PASS" else "FAIL")
    commits (List.length !failures)
    (if stable then "byte-identical" else "CHANGED")

let () =
  say "Reproduction benches for 'Optimizing Queries on Files' (SIGMOD 1994)@.";
  (* `main.exe r1` runs just the robustness bench — the CI gate *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "r1" then begin
    r1 ();
    emit_json ~only_prefix:"R1_" "BENCH_robust.json"
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "s1" then begin
    s1 ();
    emit_json ~only_prefix:"S1_" "BENCH_serve.json"
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "o2" then begin
    o2 ();
    emit_json ~only_prefix:"O2_" "BENCH_obs2.json"
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "cb1" then begin
    cb1 ();
    emit_json ~only_prefix:"CB1_" "BENCH_cost.json"
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "ct1" then begin
    ct1 ();
    emit_json ~only_prefix:"CT1_" "BENCH_contain.json"
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "w1" then begin
    w1 ();
    emit_json ~only_prefix:"W1_" "BENCH_ingest.json"
  end
  else begin
    e1 ();
    e2 ();
    e3 ();
    e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    b1 ();
    c1 ();
    w1 ();
    o1 ();
    p1 ();
    r1 ();
    s1 ();
    o2 ();
    cb1 ();
    ct1 ();
    run_bechamel ();
    emit_json ~only_prefix:"C1_" "BENCH_catalog.json";
    emit_json ~only_prefix:"CB1_" "BENCH_cost.json";
    emit_json ~only_prefix:"CT1_" "BENCH_contain.json";
    emit_json ~only_prefix:"O1_" "BENCH_obs.json";
    emit_json ~only_prefix:"O2_" "BENCH_obs2.json";
    emit_json ~only_prefix:"P1_" "BENCH_parallel.json";
    emit_json ~only_prefix:"R1_" "BENCH_robust.json";
    emit_json ~only_prefix:"S1_" "BENCH_serve.json";
    emit_json ~only_prefix:"W1_" "BENCH_ingest.json"
  end;
  say "@.done.@."
