The index catalog, end to end: persist indices for a growing log file
and keep them fresh without rebuilding from scratch.

Generate a log and put it under catalog management:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o app.log
  wrote 829 bytes to app.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog status -c cat
  log       5 names      829B  fresh
    app.log -> indices/app-117275758d73.idx

Queries run straight off the persisted indices (parsed=0B — the file
is never re-parsed):

  $ ../bin/oqf_cli.exe catalog query -c cat -s log 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  -- 0 rows from 1 files; scanned=0B parsed=0B index_ops=10 cmps=136 lookups=2 objs=0 regions=120
  -- instance cache: hits=0 misses=1 evictions=0

The file grows: regenerating with the same seed and a larger size
appends entries, byte for byte (the generator draws per entry):

  $ ../bin/oqf_cli.exe generate -k log -n 20 --seed 5 -o app.log
  wrote 2046 bytes to app.log
  $ ../bin/oqf_cli.exe catalog status -c cat
  log       5 names      829B  appended (+1217 bytes)
    app.log -> indices/app-117275758d73.idx

Refresh extends the index incrementally — only the tail is parsed:

  $ ../bin/oqf_cli.exe catalog refresh -c cat
  app.log: extended incrementally (+1217 bytes)
  $ ../bin/oqf_cli.exe catalog query -c cat -s log 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  app.log: auth
  app.log: cache
  -- 2 rows from 1 files; scanned=9B parsed=0B index_ops=10 cmps=577 lookups=2 objs=0 regions=310
  -- instance cache: hits=0 misses=1 evictions=0

An edit in the old prefix cannot be handled incrementally; the next
refresh falls back to a full rebuild:

  $ sed 's/auth/AUTH/' app.log > app.tmp && mv app.tmp app.log
  $ ../bin/oqf_cli.exe catalog status -c cat
  log       5 names     2046B  changed
    app.log -> indices/app-117275758d73-g2.idx
  $ ../bin/oqf_cli.exe catalog refresh -c cat
  app.log: rebuilt (contents changed)
