Fault-tolerant execution: the deterministic fault-injection layer
behind --inject-faults, crash-safe catalog writes, self-healing index
loads, offline repair, and the --fail-policy degradation ladder.
Every schedule is seeded, so this file replays byte-identically.

Fixtures — a two-file catalogued log corpus:

  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 3 -o app.log
  wrote 1165 bytes to app.log
  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 4 -o web.log
  wrote 1216 bytes to web.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog add -c cat -s log web.log
  added web.log (schema log): 5 region names indexed

A fault-free reference answer, for comparison with the degraded runs
below:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  web.log: cache
  -- 1 rows from 2 files; scanned=5B parsed=0B index_ops=20 cmps=481 lookups=4 objs=0 regions=365
  -- instance cache: hits=0 misses=2 evictions=0

A malformed fault spec or fail policy is rejected before anything
runs:

  $ ../bin/oqf_cli.exe query -s log app.log --inject-faults 'transient:nope' 'SELECT e FROM Entries e'
  oqf: transient wants a probability in [0,1], got "nope"
  [1]

  $ ../bin/oqf_cli.exe query -s log app.log --fail-policy sometimes 'SELECT e FROM Entries e'
  oqf: unknown fail policy "sometimes" (expected fail-fast, partial or degrade)
  [1]

Crash injection: kill the process (exit 137, as SIGKILL would) at the
first catalog.write — mid catalog add, after the index is built but
while the manifest is being persisted:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o late.log
  wrote 829 bytes to late.log
  $ ../bin/oqf_cli.exe catalog add -c cat -s log late.log --inject-faults 'crash:catalog.write@1'
  oqf: injected crash at catalog.write
  [137]

The manifest is written to a temp file, fsynced and renamed into
place, so the crash never leaves an unopenable catalog — the previous
two entries survive, still fresh, and the interrupted add simply never
happened:

  $ ../bin/oqf_cli.exe catalog status -c cat
  log       5 names     1165B  fresh
    app.log -> indices/app-117275758d73.idx
  log       5 names     1216B  fresh
    web.log -> indices/web-4a84c7c23d3b.idx

The only trace is the index the crashed add had already built, now an
orphan nothing references.  Offline repair sweeps that debris:

  $ ../bin/oqf_cli.exe catalog repair -c cat
  indices/late-f347b4811d21.idx: removed orphan index file
  generations/MANIFEST.g3: collapsed stray generation 3
  -- healed=0 quarantined=0 orphans-removed=1 generations-collapsed=1

  $ ../bin/oqf_cli.exe catalog repair -c cat
  catalog is healthy; nothing to repair

Self-healing loads: truncate an index file on disk, then query without
refresh.  The load detects the corruption (checksum mismatch),
rebuilds the index from its source on the spot, and answers
identically — counted by the catalog.healed metric, with no
degradation recorded because no answer was lost:

  $ idx=$(ls cat/indices | head -1)
  $ cp "cat/indices/$idx" idx.bak
  $ head -c 100 idx.bak > "cat/indices/$idx"
  $ ../bin/oqf_cli.exe catalog query -c cat -s log --no-refresh --metrics 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"' > out.txt
  $ grep -E '^web.log|catalog.healed|fallback.naive' out.txt
  web.log: cache
  catalog.healed = 1
  fallback.naive = 0

Offline repair handles the same damage without running a query, and
drops an entry whose source file is gone (its data is unreachable from
anywhere).  The heal above landed in a fresh generation (every
mutation does), so the entry's current index file is re-captured
first:

  $ idx=$(ls cat/indices | grep '^app' | head -1)
  $ head -c 100 idx.bak > "cat/indices/$idx"
  $ rm web.log
  $ ../bin/oqf_cli.exe catalog repair -c cat
  app.log: healed (cat/indices/app-117275758d73-g3.idx: corrupt index file (checksum mismatch))
  web.log: quarantined (source file is missing; entry dropped)
  -- healed=1 quarantined=1 orphans-removed=0 generations-collapsed=0

The same report is available as JSON for tooling:

  $ idx=$(ls cat/indices | grep '^app' | head -1)
  $ head -c 100 idx.bak > "cat/indices/$idx"
  $ ../bin/oqf_cli.exe catalog repair -c cat --format json
  [{"file":"app.log","action":"healed","detail":"cat/indices/app-117275758d73-g4.idx: corrupt index file (checksum mismatch)"}]

Rebuild the two-file corpus for the degradation demos:

  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 4 -o web.log
  wrote 1216 bytes to web.log
  $ ../bin/oqf_cli.exe catalog add -c cat -s log web.log
  added web.log (schema log): 5 region names indexed

The degradation ladder: with every pool task failing permanently,
--fail-policy degrade retries each shard on the coordinator, then
falls back to a naive scan per file.  The answer rows are identical to
the fault-free reference above (the stats line reflects the recovery
work instead); every action taken is reported on stderr:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 2 --fail-policy degrade --inject-faults 'permanent:1.0,only:pool.task' 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"' 2>degraded.txt
  web.log: cache
  -- 1 rows from 2 files; scanned=0B parsed=0B index_ops=0 cmps=0 lookups=0 objs=0 regions=0
  -- instance cache: hits=0 misses=2 evictions=0
  $ cat degraded.txt
  degraded:
    shard 0: re-evaluated directly after a task failure (injected permanent fault at pool.task)
    shard 1: re-evaluated directly after a task failure (injected permanent fault at pool.task)
    app.log: fell back to a naive scan (injected permanent fault at pool.task)
    web.log: fell back to a naive scan (injected permanent fault at pool.task)

The same schedule under the default fail-fast policy fails the query,
naming the earliest failing shard:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 2 --inject-faults 'permanent:1.0,only:pool.task' 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  oqf: shard 0: injected permanent fault at pool.task
  [1]

--fail-policy partial keeps going without the failed files and says
which were excluded:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 2 --fail-policy partial --inject-faults 'permanent:1.0,only:pool.task' 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  degraded:
    shard 0: re-evaluated directly after a task failure (injected permanent fault at pool.task)
    shard 1: re-evaluated directly after a task failure (injected permanent fault at pool.task)
    app.log: excluded from the result (injected permanent fault at pool.task)
    web.log: excluded from the result (injected permanent fault at pool.task)
  -- 0 rows from 2 files; scanned=0B parsed=0B index_ops=0 cmps=0 lookups=0 objs=0 regions=0
  -- instance cache: hits=0 misses=2 evictions=0

A recoverable schedule (transient faults in bursts shorter than the
retry budget) is fully masked by the retry layer — same answer, no
degradation, not even under fail-fast:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 2 --inject-faults 'transient:0.3,burst:2,seed:7' 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  web.log: cache
  -- 1 rows from 2 files; scanned=5B parsed=0B index_ops=20 cmps=481 lookups=4 objs=0 regions=365
  -- instance cache: hits=0 misses=2 evictions=0
