Live corpora: oqf watch polls every catalogued source, ingests what
changed as a fresh immutable generation, and retires the generations
nothing pins any more.  --scans N runs synchronous passes, so this
file replays deterministically.

Fixtures — one catalogued log file that is about to grow:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 11 -o app.log
  wrote 808 bytes to app.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed

A scan over a quiet corpus refreshes nothing:

  $ ../bin/oqf_cli.exe watch -c cat --scans 1
  -- scan 1: scanned=1 refreshed=0 failed=0 skipped=0 retired=0 generation=1

Append whole entries (the log schema is append-only, so the watcher
extends the index incrementally instead of rebuilding), then scan
again — the ingest commits generation 2 and the superseded image is
retired behind it:

  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 11 -o app.log
  wrote 1206 bytes to app.log
  $ ../bin/oqf_cli.exe watch -c cat --scans 2
  app.log: extended incrementally (+398 bytes)
  -- scan 1: scanned=1 refreshed=1 failed=0 skipped=0 retired=0 generation=2
  -- scan 2: scanned=1 refreshed=0 failed=0 skipped=0 retired=0 generation=2

The committed generation is immediately queryable, and the catalog
directory holds exactly one manifest image — the live one:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --no-refresh 'SELECT e.Level FROM Entries e' | tail -1
  -- instance cache: hits=0 misses=1 evictions=0
  $ ls cat/generations
  MANIFEST.g2

A source that disappears mid-watch fails its refresh without stopping
the scan; the failure is reported per entry and the pass completes:

  $ rm app.log
  $ ../bin/oqf_cli.exe watch -c cat --scans 1
  app.log: failed: app.log: source file is missing
  -- scan 1: scanned=1 refreshed=0 failed=1 skipped=0 retired=0 generation=2
