The query daemon, end to end: start `oqf serve` on a catalog, stream
queries and region expressions from a client over the Unix-domain
socket, and shut it down gracefully.

Build a catalog of two log files:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o app.log
  wrote 829 bytes to app.log
  $ ../bin/oqf_cli.exe generate -k log -n 6 --seed 9 -o web.log
  wrote 623 bytes to web.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog add -c cat -s log web.log
  added web.log (schema log): 5 region names indexed

Start the daemon in the background; the client waits for the socket:

  $ ../bin/oqf_cli.exe serve -c cat --socket oqf.sock > server.log 2>&1 &

  $ ../bin/oqf_cli.exe client ping --socket oqf.sock
  pong

Queries stream rows as each file settles; a repeat is answered from
the daemon's warm result cache:

  $ ../bin/oqf_cli.exe client query 'SELECT e.Service FROM Entries e WHERE e.Level = "WARN"' -s log --socket oqf.sock
  web.log: db
  -- 1 rows
  $ ../bin/oqf_cli.exe client query 'SELECT e.Service FROM Entries e WHERE e.Level = "WARN"' -s log --socket oqf.sock
  web.log: db
  -- 1 rows (cached)

Region expressions stream raw regions through the lazy evaluator:

  $ ../bin/oqf_cli.exe client rexpr 'sigma["db"](Service)' -s log --socket oqf.sock
  app.log: [359,361]
  web.log: [145,147]
  -- 2 regions

A query that does not parse answers structured diagnostics instead of
killing the connection; the daemon survives:

  $ ../bin/oqf_cli.exe client query 'SELECT FROM nonsense' -s log --socket oqf.sock
  {"code":"OQF000","severity":"error","message":"query parse error at 7: expected a variable"}
  [1]
  $ ../bin/oqf_cli.exe client ping --socket oqf.sock
  pong

Shutdown drains in-flight work and unlinks the socket:

  $ ../bin/oqf_cli.exe client shutdown --socket oqf.sock
  bye
  $ wait
  $ cat server.log
  oqf serve: listening on oqf.sock
  oqf serve: shutdown requested; draining
  oqf serve: drained; bye
  $ ls oqf.sock
  ls: cannot access 'oqf.sock': No such file or directory
  [2]
