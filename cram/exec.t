Parallel execution: sharded corpora behind --jobs, the batch runner,
and the fingerprint-keyed result cache.  Every output here must be
byte-identical whatever the jobs count — CI replays the whole cram
suite under OQF_JOBS=4.

Build a two-file catalogued corpus:

  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 3 -o a.log
  wrote 1165 bytes to a.log
  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 4 -o b.log
  wrote 1216 bytes to b.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log a.log
  added a.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog add -c cat -s log b.log
  added b.log (schema log): 5 region names indexed

A multi-file query gives the same answer at any worker count — the
shards merge back into corpus order:

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 1 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  b.log: cache
  -- 1 rows from 2 files; scanned=5B parsed=0B index_ops=20 cmps=481 lookups=4 objs=0 regions=365
  -- instance cache: hits=0 misses=2 evictions=0

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 4 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"'
  b.log: cache
  -- 1 rows from 2 files; scanned=5B parsed=0B index_ops=20 cmps=481 lookups=4 objs=0 regions=365
  -- instance cache: hits=0 misses=2 evictions=0

--shards reports each shard's makeup and timing on stderr (stdout is
untouched; the elapsed figures are normalized here because they vary
run to run):

  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 2 --shards 'SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"' 2>&1 >/dev/null | sed 's/[0-9.]* ms/_ ms/'
  shard 0: 1 files, 2 KB, _ ms
  shard 1: 1 files, 2 KB, _ ms

Single-file queries accept --jobs too:

  $ ../bin/oqf_cli.exe query -s log a.log --jobs 4 'SELECT e.Service FROM Entries e WHERE e.Level = "WARN"'
  auth
  db
  -- 2 rows (3 candidates, exact plan); scanned=8B parsed=0B index_ops=10 cmps=356 lookups=2 objs=0 regions=195

A jobs count below one is rejected up front, exit 1 with the message
on stderr — the standard error-path convention:

  $ ../bin/oqf_cli.exe query -s log a.log --jobs 0 'SELECT e FROM Entries e'
  oqf: jobs must be at least 1 (got 0)
  [1]
  $ ../bin/oqf_cli.exe query -s log a.log --jobs=-3 'SELECT e FROM Entries e'
  oqf: jobs must be at least 1 (got -3)
  [1]
  $ ../bin/oqf_cli.exe catalog query -c cat -s log --jobs 0 'SELECT e FROM Entries e'
  oqf: jobs must be at least 1 (got 0)
  [1]

Batch mode fans a query file out over the pool; a repeated query is
served from the result cache (same normalized text, same corpus
fingerprint):

  $ cat > queries.txt <<'EOF'
  > # error sweep
  > SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"
  > 
  > SELECT e.Pid FROM Entries e WHERE e.Service = "auth"
  > SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"
  > EOF
  $ ../bin/oqf_cli.exe batch -s log -c cat --jobs 4 queries.txt
  == SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"
  b.log: cache
  -- 1 rows
  == SELECT e.Pid FROM Entries e WHERE e.Service = "auth"
  -- 0 rows
  == SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"
  b.log: cache
  -- 1 rows (cached)
  -- result cache: hits=1 misses=2 evictions=0 containment=0 entries=2

Cache keys carry the corpus fingerprint.  The source grows, the batch
refreshes the catalog, and the same query file now answers against
the new corpus (3 rows, was 1) — with the repeated query still
hitting within the run because both occurrences key to the same new
fingerprint:

  $ ../bin/oqf_cli.exe generate -k log -n 30 --seed 3 -o a.log
  wrote 2991 bytes to a.log
  $ ../bin/oqf_cli.exe batch -s log -c cat --jobs 2 queries.txt 2>/dev/null | tail -3
  b.log: cache
  -- 3 rows (cached)
  -- result cache: hits=1 misses=2 evictions=0 containment=0 entries=2

Bad inputs fail loudly:

  $ ../bin/oqf_cli.exe batch -s log queries.txt
  oqf: need --catalog DIR or --data FILE
  [1]
  $ echo 'SELECT nonsense' > bad.txt
  $ ../bin/oqf_cli.exe batch -s log -c cat bad.txt
  oqf: bad.txt:1: query parse error at 15: expected FROM but query ended
  [1]
