Observability: explain-analyze plans, metrics dumps, trace files, and
error exit codes.

  $ ../bin/oqf_cli.exe generate -k bibtex -n 4 --seed 7 -o refs.bib
  wrote 2079 bytes to refs.bib

EXPLAIN ANALYZE prints the plan, the optimizer's rewrites, and a
per-node annotation of the actual evaluation next to the cost
estimates.  The analyzed totals agree with the stats line:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --explain \
  >   'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"' \
  >   2>/dev/null | sed -n '/^rewrites:/,/^stats:/p'
  rewrites:
    weaken-direct: Reference >d Authors => Reference > Authors
    weaken-direct: Authors >d Name => Authors > Name
    weaken-direct: Name >d Last_Name => Name > Last_Name
    shorten: Authors > Name > Last_Name => Authors > Last_Name
  cost plan:
    r: rules (considered 2, est cost 175.2, est rows 2)
  analyze:
    r: Reference > Authors > sigma["Chang"](Last_Name)
      >  [out=3 est-rows=2 self: ops=1 cmps=12 | subtree: ops=3 cmps=40 | est weighted=175.2]
        Reference  [out=4 est-rows=4 self: ops=0 cmps=0 | est weighted=10.8]
        >  [out=3 est-rows=2 self: ops=1 cmps=12 | subtree: ops=2 cmps=28 | est weighted=153.3]
          Authors  [out=4 est-rows=4 self: ops=0 cmps=0 | est weighted=10.8]
          sigma["Chang"]  [out=3 est-rows=2 self: ops=1 cmps=16 lookups=1 | subtree: ops=1 cmps=16 | est weighted=131.3]
            Last_Name  [out=16 est-rows=16 self: ops=0 cmps=0 | est weighted=22.8]
    analyzed totals: ops=3 cmps=40 lookups=1
  candidates: 3  answers: 3
  stats: scanned=0B parsed=1557B index_ops=20 cmps=999 lookups=1 objs=3 regions=968

--metrics dumps the registry (counters sorted by name) after the run:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --metrics \
  >   'SELECT r.Key FROM References r' 2>/dev/null \
  >   | grep -E 'engine.index_ops|optimizer.weaken'
  engine.index_ops = 18
  optimizer.weaken_direct = 1

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --metrics \
  >   'SELECT r.Key FROM References r' 2>/dev/null \
  >   | grep -c 'query.latency_ms = count=1'
  1

--trace FILE writes JSON-lines events (or a Chrome trace_event array
when the file ends in .json):

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --trace t.jsonl \
  >   'SELECT r.Key FROM References r' >/dev/null 2>&1
  $ grep -c '"ev":"begin".*"name":"query.run"' t.jsonl
  1
  $ grep -c '"name":"query.phase1"' t.jsonl
  2

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --trace t.json \
  >   'SELECT r.Key FROM References r' >/dev/null 2>&1
  $ head -1 t.json
  [
  $ grep -c '"name":"query.run","ph":"B"' t.json
  1
  $ tail -1 t.json
  ]

Every query error path exits non-zero with a message on stderr — the
planner, the baseline scanner, and raw region expressions alike:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT r FROM Bogus r'
  oqf: unknown class: Bogus
  [1]

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --baseline 'SELECT r FROM Bogus r'
  oqf: unknown class: Bogus
  [1]

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT nonsense'
  oqf: query parse error at 15: expected FROM but query ended
  [1]

  $ ../bin/oqf_cli.exe rexpr -s bibtex refs.bib 'Bogus > Authors'
  oqf: unknown region name: Bogus
  [1]

A trace requested on a failing query still produces a well-formed file
(the sink is flushed on exit):

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --trace err.json \
  >   'SELECT r FROM Bogus r' 2>/dev/null
  [1]
  $ head -1 err.json
  [
  $ tail -1 err.json
  ]
