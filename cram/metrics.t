Telemetry end to end: aggregate a query log with `oqf stats`, expose
the live registry as Prometheus text, and correlate a daemon query's
reply, qlog record and slow-log entry through one trace id.

A hand-written query log with known latencies (integral, so every
aggregate prints deterministically):

  $ cat > replay.qlog <<'EOF'
  > {"ts":1,"trace":"q1","workload":"dashboard","schema":"log","kind":"query","query":"SELECT e.Service FROM Entries e","ms":10,"rows":4,"cached":false,"shards":2,"outcome":"ok"}
  > {"ts":2,"trace":"q2","workload":"dashboard","schema":"log","kind":"query","query":"SELECT e.Service FROM Entries e","ms":30,"rows":4,"cached":true,"shards":2,"outcome":"ok"}
  > {"ts":3,"trace":"q3","workload":"dashboard","schema":"log","kind":"query","query":"SELECT e.Level FROM Entries e","ms":50,"rows":9,"cached":false,"shards":2,"outcome":"degraded","events":[{"action":"naive-fallback","detail":"a.log"}],"retries":2,"faults":1}
  > {"ts":4,"trace":"q4","workload":"audit","schema":"log","kind":"query","query":"SELECT e.Ts FROM Entries e","ms":200,"rows":1,"cached":false,"shards":0,"outcome":"error","error":"boom"}
  > torn final line from a crash
  > EOF

The text report: per-workload latency distribution, top queries,
resilience trends, with the torn line skipped and counted:

  $ ../bin/oqf_cli.exe stats replay.qlog
  qlog: 4 records (1 skipped) from 1 file
  
  workloads:
    workload            count   errors degraded     slow   p50(ms)   p95(ms)   p99(ms)  cache%
    audit                   1        1        0        0    200.00    200.00    200.00    0.0%
    dashboard               3        0        1        0     30.00     50.00     50.00   33.3%
  
  top queries by frequency:
          2x  SELECT e.Service FROM Entries e
          1x  SELECT e.Level FROM Entries e
          1x  SELECT e.Ts FROM Entries e
  
  top queries by total latency:
     200.0ms  SELECT e.Ts FROM Entries e
      50.0ms  SELECT e.Level FROM Entries e
      40.0ms  SELECT e.Service FROM Entries e
  
  resilience: 2 retries, 1 injected faults observed

The JSON shape downstream tooling consumes:

  $ ../bin/oqf_cli.exe stats replay.qlog --top 1 --format json
  {"records":4,"skipped":1,"files":["replay.qlog"],"workloads":[{"workload":"audit","count":1,"errors":1,"degraded":0,"cached":0,"slow":0,"retries":0,"faults":0,"p50_ms":200,"p95_ms":200,"p99_ms":200,"max_ms":200,"total_ms":200},{"workload":"dashboard","count":3,"errors":0,"degraded":1,"cached":1,"slow":0,"retries":2,"faults":1,"p50_ms":30,"p95_ms":50,"p99_ms":50,"max_ms":50,"total_ms":90}],"top_by_count":[{"query":"SELECT e.Service FROM Entries e","workload":"dashboard","schema":"log","count":2,"total_ms":40,"max_ms":30,"cached":1}],"top_by_total_ms":[{"query":"SELECT e.Ts FROM Entries e","workload":"audit","schema":"log","count":1,"total_ms":200,"max_ms":200,"cached":0}]}

A slow threshold recomputes the slow counts at replay time:

  $ ../bin/oqf_cli.exe stats replay.qlog --slow-query-ms 40 --format json | grep -o '"slow":[0-9]*' | sort
  "slow":1
  "slow":1

Now the live side.  Build a small catalog and start a daemon with a
query log, a zero slow threshold (everything is slow) and an HTTP
facade for scraping:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o app.log
  wrote 829 bytes to app.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed

Build-time statistics were recorded in the manifest:

  $ ../bin/oqf_cli.exe catalog stats -c cat
  app.log (schema log, 829B)
    Entry                   8 regions        136 match points
    Level                   8 regions          8 match points
    Message                 8 regions         48 match points
    Service                 8 regions          8 match points
    Timestamp               8 regions         48 match points
  -- 1 entries: regions=40 match-points=248

  $ ../bin/oqf_cli.exe serve -c cat --socket oqf.sock --http 7177 \
  >   --qlog daemon.qlog --slow-query-ms 0 > server.log 2>&1 &

  $ ../bin/oqf_cli.exe client query 'SELECT e.Level FROM Entries e WHERE e.Service = "db"' \
  >   -s log --workload dashboard --socket oqf.sock
  app.log: INFO
  -- 1 rows

The daemon wrote one qlog record for it, and the same trace id is in
the slow log — one id correlates the reply, the record and the tail:

  $ grep -c '"workload":"dashboard"' daemon.qlog
  1
  $ trace=$(grep -o '"trace":"[^"]*"' daemon.qlog | head -1)
  $ grep -c "$trace" daemon.qlog.slow
  1

Scrape the live registry over HTTP; the page is structurally valid
Prometheus text exposition:

  $ ../bin/oqf_cli.exe metrics scrape --port 7177 --validate | sed -E 's/[0-9]+ lines/N lines/'
  metrics: N lines, exposition syntax ok

  $ ../bin/oqf_cli.exe client shutdown --socket oqf.sock
  bye
  $ wait

`oqf metrics dump` renders its own process's registry in the same
format; a fresh process holds just the statically-registered series,
among them the query log's health counters:

  $ ../bin/oqf_cli.exe metrics dump | grep -E '^# TYPE oqf_qlog' | sort
  # TYPE oqf_qlog_dropped gauge
  # TYPE oqf_qlog_records gauge
  # TYPE oqf_qlog_rotations gauge
  # TYPE oqf_qlog_slow gauge
