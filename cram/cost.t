The cost-based planner and the workload-driven index advisor, end to
end on a small deterministic corpus.

  $ ../bin/oqf_cli.exe generate -k log -n 12 --seed 11 -o cost.log
  wrote 1206 bytes to cost.log

Both planner modes answer identically — every candidate the cost mode
may pick is set-equivalent by construction — and cost mode is selected
per query with --plan:

  $ ../bin/oqf_cli.exe query -s log cost.log 'SELECT e.Level FROM Entries e WHERE e.Service = "db"' --plan rules
  INFO
  WARN
  -- 2 rows (3 candidates, exact plan); scanned=12B parsed=0B index_ops=10 cmps=354 lookups=2 objs=0 regions=195

  $ ../bin/oqf_cli.exe query -s log cost.log 'SELECT e.Level FROM Entries e WHERE e.Service = "db"' --plan cost
  INFO
  WARN
  -- 2 rows (3 candidates, exact plan); scanned=12B parsed=0B index_ops=10 cmps=354 lookups=2 objs=0 regions=195

  $ ../bin/oqf_cli.exe query -s log cost.log 'SELECT e.Level FROM Entries e' --plan greedy
  oqf: unknown plan mode "greedy" (expected rules|cost)
  [1]

EXPLAIN ANALYZE in cost mode shows which candidate won per node and
the estimated rows next to the actuals:

  $ ../bin/oqf_cli.exe query -s log cost.log 'SELECT e.Level FROM Entries e WHERE e.Service = "db"' --plan cost --explain 2>/dev/null | sed -n '/cost plan:/,/analyze:/p'
  cost plan:
    e: rules (considered 2, est cost 154.0, est rows 1)
    <select>: rules (considered 2, est cost 279.2, est rows 1)
  analyze:

  $ ../bin/oqf_cli.exe query -s log cost.log 'SELECT e.Level FROM Entries e WHERE e.Service = "db"' --plan cost --explain 2>/dev/null | grep -m1 'est-rows'
      >  [out=3 est-rows=1 self: ops=1 cmps=34 | subtree: ops=2 cmps=46 | est weighted=154.0]

The catalog records build-time statistics, including nesting-depth
histograms, and renders them deterministically sorted:

  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log cost.log
  added cost.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog stats -c cat --format json
  {"entries":[{"source":"cost.log","schema":"log","length":1206,"names":[{"name":"Entry","regions":12,"match_points":204,"depths":[12]},{"name":"Level","regions":12,"match_points":12,"depths":[0,12]},{"name":"Message","regions":12,"match_points":72,"depths":[0,12]},{"name":"Service","regions":12,"match_points":12,"depths":[0,12]},{"name":"Timestamp","regions":12,"match_points":72,"depths":[0,12]}]}]}

oqf check prices OQF006 with the same model the planner uses, so the
two can never disagree about what is expensive; only the scalar
changes between modes, never the verdict structure:

  $ ../bin/oqf_cli.exe check -s log --expr 'Entry >d sigma["db"](Service)' --cost-threshold 10 --plan cost
  == Entry >d sigma["db"](Service)
    warning[OQF006] estimated evaluation cost 23948 exceeds threshold 10 and the expression uses 1 direct-inclusion operator(s) -- simple=0 direct=1 set=0 sel=1 weighted=23948.1
    hint[OQF003] direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Entry >d Service => Entry > Service (at 0..5)
  -- errors=0 warnings=1 hints=1

The advisor replays an aggregated query log against the cost model.  A
hand-written log with known latencies (the shape oqf --qlog appends):

  $ cat > replay.qlog <<'EOF'
  > {"ts":1,"trace":"q1","workload":"dash","schema":"log","kind":"query","query":"SELECT e.Level FROM Entries e WHERE e.Service = \"db\"","ms":40,"rows":2,"cached":false,"shards":0,"outcome":"ok"}
  > {"ts":2,"trace":"q2","workload":"dash","schema":"log","kind":"query","query":"SELECT e.Level FROM Entries e WHERE e.Service = \"db\"","ms":60,"rows":2,"cached":false,"shards":0,"outcome":"ok"}
  > {"ts":3,"trace":"q3","workload":"audit","schema":"log","kind":"query","query":"SELECT e.Message FROM Entries e WHERE e.Level = \"ERROR\"","ms":25,"rows":1,"cached":false,"shards":0,"outcome":"ok"}
  > EOF

With only the root indexed, both replayed queries run uncovered; the
advisor prices the alternatives off the catalog statistics and ranks
the additions by predicted saving:

  $ ../bin/oqf_cli.exe advise --qlog replay.qlog -c cat --index Entry
  replayed 2 distinct queries from 3 qlog records
  add Service: indexing Service speeds up 1 query (predicted 78.48ms saved over the replayed workload)
  add Level: indexing Level speeds up 1 query (predicted 19.62ms saved over the replayed workload)

Indexed names the workload never reads are offered as drops:

  $ ../bin/oqf_cli.exe advise --qlog replay.qlog -c cat | sed 's/ — /: /'
  replayed 2 distinct queries from 3 qlog records
  drop Message: no replayed query reads Message: dropping it saves index maintenance at no latency cost
  drop Timestamp: no replayed query reads Timestamp: dropping it saves index maintenance at no latency cost

The JSON shape downstream tooling consumes:

  $ ../bin/oqf_cli.exe advise --qlog replay.qlog -c cat --index Entry --top 1 --format json
  {"replayed":2,"records":3,"recommendations":[{"action":"add","name":"Service","predicted_ms":78.4837517922,"queries":1,"detail":"indexing Service speeds up 1 query (predicted 78.48ms saved over the replayed workload)"}]}

The classic positional mode (sufficient index set, §7) is unchanged:

  $ ../bin/oqf_cli.exe advise -s log 'SELECT e.Level FROM Entries e WHERE e.Service = "db"'
  index these region names for exact evaluation:
    Entry, Service

  $ ../bin/oqf_cli.exe advise
  oqf: need QUERY arguments or --qlog FILE
  [1]
