Static analysis: every diagnostic code of the oqf check engine, the
execution gate it feeds, and the catalog audit.

  $ ../bin/oqf_cli.exe generate -k bibtex -n 4 --seed 7 -o refs.bib
  wrote 2079 bytes to refs.bib

OQF001: a direct inclusion that is not a RIG edge is provably empty on
every conforming file (Prop 3.3) — an error:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference >d Name'
  == Reference >d Name
    error[OQF001] trivially empty: the answer is the empty set on every instance satisfying the RIG (Prop 3.3) -- (Reference, Name) is not a RIG edge (at 0..9)
  -- errors=1 warnings=0 hints=0
  [1]

OQF002: a name the RIG has never heard of:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference > Nope'
  == Reference > Nope
    error[OQF002] unknown region name Nope w.r.t. the RIG (at 12..16)
  -- errors=1 warnings=0 hints=0
  [1]

OQF003/OQF004: rewrites the optimizer applies anyway (Prop 3.5 a/b) —
hints, exit 0:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference >d Authors' --expr 'Authors > Name > Last_Name'
  == Reference >d Authors
    hint[OQF003] direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Reference >d Authors => Reference > Authors (at 0..9)
  == Authors > Name > Last_Name
    hint[OQF004] inclusion chain is shortenable (Prop 3.5b); the optimizer applies this rewrite -- Authors > Name > Last_Name => Authors > Last_Name (at 0..7)
  -- errors=0 warnings=0 hints=2

OQF005: a dead union arm — the whole is satisfiable, the arm is not:

  $ ../bin/oqf_cli.exe check -s bibtex --expr '(Reference >d Name) | (Reference > Authors)'
  == (Reference >d Name) | (Reference > Authors)
    warning[OQF005] subexpression Reference >d Name can only be empty on instances conforming to the RIG -- (Reference, Name) is not a RIG edge (at 1..10)
    hint[OQF305] minimizable: a provably-equivalent smaller expression exists (applied by the planner under --minimize) -- Reference >d Name | Reference > Authors => Reference > Authors
  -- errors=0 warnings=1 hints=1

OQF006: estimated cost above threshold while direct-inclusion
operators remain:

  $ ../bin/oqf_cli.exe check -s bibtex --cost-threshold 100 --expr 'Reference >d Authors'
  == Reference >d Authors
    warning[OQF006] estimated evaluation cost 22952 exceeds threshold 100 and the expression uses 1 direct-inclusion operator(s) -- simple=0 direct=1 set=0 sel=0 weighted=22951.5
    hint[OQF003] direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Reference >d Authors => Reference > Authors (at 0..9)
  -- errors=0 warnings=1 hints=1

Whole queries: a path the RIG cannot walk makes the query empty on
every conforming file; an unknown attribute merely degrades to a
wildcard (the planner's behaviour), so it warns instead:

  $ ../bin/oqf_cli.exe check -s bibtex 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"'
  == SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  -- errors=1 warnings=1 hints=0
  [1]

  $ ../bin/oqf_cli.exe check -s bibtex 'SELECT r.Bogus FROM References r'
  == SELECT r.Bogus FROM References r
    warning[OQF002] r: attribute Bogus names no region of the schema; the planner treats it as a wildcard (at 9..14)
  -- errors=0 warnings=1 hints=0

Query files, one per line, # comments skipped — the shape the CI lint
gate feeds in:

  $ printf '# nightly checks\nSELECT r.Key FROM References r\nSELECT r FROM References r WHERE r.Title.Last_Name = "Chang"\n' > nightly.queries
  $ ../bin/oqf_cli.exe check -s bibtex --queries nightly.queries
  == nightly.queries:2: SELECT r.Key FROM References r
    ok
  == nightly.queries:3: SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  -- errors=1 warnings=1 hints=0
  [1]

With no query inputs, check lints the schema itself (OQF103:
non-natural constructs, §4):

  $ ../bin/oqf_cli.exe check -s bibtex
  == schema bibtex
    hint[OQF103] Abstract: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Abstract_value
    hint[OQF103] Title: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Title_value
    hint[OQF103] Year: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Year_value
  -- errors=0 warnings=0 hints=3

OQF102: a declared RIG that disagrees with the one rig_of_grammar
derives — every missing node/edge is an error:

  $ printf '# hand-maintained RIG, long out of date\nReference -> Key\nGhost\n' > decl.rig
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig 2>&1 | sed -n '2,3p'
    error[OQF102] declared RIG is missing a node the grammar derives -- Abstract
    error[OQF102] declared RIG is missing a node the grammar derives -- Abstract_value
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig 2>&1 | grep -c 'OQF102'
  34
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig > /dev/null
  [1]

JSON rendering is one object per line — machine-consumable by the CI
gate:

  $ ../bin/oqf_cli.exe check -s bibtex --format json --expr 'Reference >d Name'
  [
    {"code":"OQF001","severity":"error","message":"trivially empty: the answer is the empty set on every instance satisfying the RIG (Prop 3.3)","detail":"(Reference, Name) is not a RIG edge","span":{"start":0,"stop":9}}
  ]
  [1]

The same engine gates execution: a provably-empty query is refused
before phase 1 unless forced, and --explain shows the diagnostics
alongside the plan:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"'
  oqf: static analysis found 1 error (use --force to execute anyway):
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
  [1]

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --force 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"' 2>/dev/null
  -- 0 rows (0 candidates, exact plan); scanned=0B parsed=0B index_ops=17 cmps=959 lookups=0 objs=0 regions=959

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --force --explain 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"' 2>/dev/null | sed -n '/^diagnostics:/,/^rewrites:/p'
  diagnostics:
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  rewrites: (none)

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --explain 'SELECT r.Key FROM References r' 2>/dev/null | grep diagnostics
  diagnostics: (none)

Catalog audit: fresh is quiet; appended sources, orphan index files
and missing sources each get their code:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o app.log
  wrote 829 bytes to app.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog audit -c cat
  -- audited 1 entries: errors=0 warnings=0 hints=0

  $ printf '[2026-07-04 00:00:08] level=ERROR service=auth msg="late arrival"\n' >> app.log
  $ ../bin/oqf_cli.exe catalog audit -c cat
  warning[OQF201] app.log: stale index: the source grew append-only since the last build (refresh extends it incrementally) -- 829B -> 895B
  -- audited 1 entries: errors=0 warnings=1 hints=0

  $ : > cat/indices/ghost-full.idx
  $ ../bin/oqf_cli.exe catalog audit -c cat | grep OQF202
  warning[OQF202] indices/ghost-full.idx: orphan index file: no manifest entry references it (oqf catalog repair removes it)

  $ rm app.log
  $ ../bin/oqf_cli.exe catalog audit -c cat
  error[OQF203] app.log: orphan manifest entry: the source file is missing (oqf catalog repair drops it)
  warning[OQF202] indices/ghost-full.idx: orphan index file: no manifest entry references it (oqf catalog repair removes it)
  -- audited 1 entries: errors=1 warnings=1 hints=0
  [1]

  $ ../bin/oqf_cli.exe catalog audit -c cat --format json | head -3
  [
    {"code":"OQF203","severity":"error","subject":"app.log","message":"orphan manifest entry: the source file is missing (oqf catalog repair drops it)"},
    {"code":"OQF202","severity":"warning","subject":"indices/ghost-full.idx","message":"orphan index file: no manifest entry references it (oqf catalog repair removes it)"}

Flag validation matches the query subcommand's convention everywhere:
bad values exit 1 with a one-line message on stderr:

  $ ../bin/oqf_cli.exe check -s bibtex --format yaml
  oqf: unknown format yaml (expected text or json)
  [1]
  $ ../bin/oqf_cli.exe check -s bibtex --cost-threshold abc
  oqf: cost threshold must be a positive number (got abc)
  [1]
  $ ../bin/oqf_cli.exe catalog audit -c cat --format xml
  oqf: unknown format xml (expected text or json)
  [1]
  $ printf 'SELECT r.Key FROM References r\n' > one.queries
  $ ../bin/oqf_cli.exe batch -s bibtex --data refs.bib --jobs 0 one.queries
  oqf: jobs must be at least 1 (got 0)
  [1]

The OQF3xx family: containment and subsumption findings from the
lib/analysis Contain decision procedure.  The procedure is sound — a
finding is a proof over all RIG-conforming instances; when it cannot
decide it stays silent (no false positives by construction).

OQF301: a union arm contained in a sibling contributes nothing.
OQF302: an intersection operand implied by another is a tautological
conjunct.  OQF303: a difference that provably removes everything.
Each rides with the OQF305 hint naming the smaller equivalent the
planner's minimizer applies:

  $ ../bin/oqf_cli.exe check -s bibtex --expr '(Reference > Authors) | Reference'
  == (Reference > Authors) | Reference
    warning[OQF301] subsumed subexpression: union arm Reference > Authors contributes nothing on any conforming instance -- Reference > Authors is contained in Reference (at 13..20)
    hint[OQF305] minimizable: a provably-equivalent smaller expression exists (applied by the planner under --minimize) -- Reference > Authors | Reference => Reference
  -- errors=0 warnings=1 hints=1

  $ ../bin/oqf_cli.exe check -s bibtex --expr '(Reference > Authors) & Reference'
  == (Reference > Authors) & Reference
    warning[OQF302] tautological conjunct: intersecting with Reference cannot change the result -- Reference > Authors is contained in Reference (at 1..10)
    hint[OQF305] minimizable: a provably-equivalent smaller expression exists (applied by the planner under --minimize) -- Reference > Authors & Reference => Reference > Authors
  -- errors=0 warnings=1 hints=1

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'sigma["Chang"](Last_Name) - word["Chang"](Last_Name)'
  == sigma["Chang"](Last_Name) - word["Chang"](Last_Name)
    warning[OQF303] empty by containment: every region of sigma["Chang"](Last_Name) is removed by word["Chang"](Last_Name), so the difference is empty on every conforming instance -- sigma["Chang"](Last_Name) is contained in word["Chang"](Last_Name) (at 15..24)
  -- errors=0 warnings=1 hints=0

OQF304: two or more queries checked together are analyzed as a batch;
a query whose rows are recoverable by filtering another's result is
flagged (the later of two mutually-subsuming duplicates, so one
representative stays clean):

  $ ../bin/oqf_cli.exe check -s bibtex \
  >   'SELECT r FROM References r' \
  >   'SELECT r FROM References r WHERE r.Year = "1982"'
  == SELECT r FROM References r
    ok
  == SELECT r FROM References r WHERE r.Year = "1982"
    hint[OQF003] r: direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Year >d Year_value => Year > Year_value (at 35..39)
    hint[OQF003] r: direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Reference >d Year => Reference > Year
    hint[OQF004] r: inclusion chain is shortenable (Prop 3.5b); the optimizer applies this rewrite -- Reference > Year > Year_value => Reference > Year_value
  == cross-query analysis
    warning[OQF304] SELECT r FROM References r WHERE r.Year = "1982": query is subsumed by another query of the batch: its rows can be recovered by filtering that query's result -- superset: SELECT r FROM References r
  -- errors=0 warnings=1 hints=3

The minimizer is live in the execution path: under the cost planner
(the default) a subsumed union arm is dropped before plan enumeration,
visible as a minimize rewrite in the EXPLAIN log, and the whole-query
answer is unchanged:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --explain \
  >   'SELECT r.Key FROM References r WHERE r.Year = "1982" OR r.Year STARTS WITH "19"' 2>/dev/null \
  >   | grep -E '^  minimize' | head -1
    minimize: Reference >d Year >d sigma["1982"](Year_value) | Reference >d Year >d prefix["19"](Year_value) => Reference >d Year >d prefix["19"](Year_value)

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib \
  >   'SELECT r.Key FROM References r WHERE r.Year = "1982" OR r.Year STARTS WITH "19"' 2>/dev/null | head -2
  Ref0000
  Ref0001

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --no-minimize \
  >   'SELECT r.Key FROM References r WHERE r.Year = "1982" OR r.Year STARTS WITH "19"' 2>/dev/null | head -2
  Ref0000
  Ref0001

Every stable code, its severity and its one-line summary, from the
single registry the checkers emit from (--format json is the pinned
machine form; see test/fixtures/oqf_codes.golden.json):

  $ ../bin/oqf_cli.exe check --list-codes | grep 'OQF30'
  OQF301  warning  subsumed subexpression: a union arm is contained in another
  OQF302  warning  tautological conjunct: an intersection operand is implied by another
  OQF303  warning  empty by containment: a difference provably removes everything
  OQF304  warning  batch query subsumed by another query of the same batch
  OQF305  hint     minimizable expression: a provably-equivalent smaller form exists
