Static analysis: every diagnostic code of the oqf check engine, the
execution gate it feeds, and the catalog audit.

  $ ../bin/oqf_cli.exe generate -k bibtex -n 4 --seed 7 -o refs.bib
  wrote 2079 bytes to refs.bib

OQF001: a direct inclusion that is not a RIG edge is provably empty on
every conforming file (Prop 3.3) — an error:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference >d Name'
  == Reference >d Name
    error[OQF001] trivially empty: the answer is the empty set on every instance satisfying the RIG (Prop 3.3) -- (Reference, Name) is not a RIG edge (at 0..9)
  -- errors=1 warnings=0 hints=0
  [1]

OQF002: a name the RIG has never heard of:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference > Nope'
  == Reference > Nope
    error[OQF002] unknown region name Nope w.r.t. the RIG (at 12..16)
  -- errors=1 warnings=0 hints=0
  [1]

OQF003/OQF004: rewrites the optimizer applies anyway (Prop 3.5 a/b) —
hints, exit 0:

  $ ../bin/oqf_cli.exe check -s bibtex --expr 'Reference >d Authors' --expr 'Authors > Name > Last_Name'
  == Reference >d Authors
    hint[OQF003] direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Reference >d Authors => Reference > Authors (at 0..9)
  == Authors > Name > Last_Name
    hint[OQF004] inclusion chain is shortenable (Prop 3.5b); the optimizer applies this rewrite -- Authors > Name > Last_Name => Authors > Last_Name (at 0..7)
  -- errors=0 warnings=0 hints=2

OQF005: a dead union arm — the whole is satisfiable, the arm is not:

  $ ../bin/oqf_cli.exe check -s bibtex --expr '(Reference >d Name) | (Reference > Authors)'
  == (Reference >d Name) | (Reference > Authors)
    warning[OQF005] subexpression Reference >d Name can only be empty on instances conforming to the RIG -- (Reference, Name) is not a RIG edge (at 1..10)
  -- errors=0 warnings=1 hints=0

OQF006: estimated cost above threshold while direct-inclusion
operators remain:

  $ ../bin/oqf_cli.exe check -s bibtex --cost-threshold 100 --expr 'Reference >d Authors'
  == Reference >d Authors
    warning[OQF006] estimated evaluation cost 21932 exceeds threshold 100 and the expression uses 1 direct-inclusion operator(s) -- simple=0 direct=1 set=0 sel=0 weighted=21931.6
    hint[OQF003] direct inclusion is weakenable (Prop 3.5a); the optimizer applies this rewrite -- Reference >d Authors => Reference > Authors (at 0..9)
  -- errors=0 warnings=1 hints=1

Whole queries: a path the RIG cannot walk makes the query empty on
every conforming file; an unknown attribute merely degrades to a
wildcard (the planner's behaviour), so it warns instead:

  $ ../bin/oqf_cli.exe check -s bibtex 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"'
  == SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  -- errors=1 warnings=1 hints=0
  [1]

  $ ../bin/oqf_cli.exe check -s bibtex 'SELECT r.Bogus FROM References r'
  == SELECT r.Bogus FROM References r
    warning[OQF002] r: attribute Bogus names no region of the schema; the planner treats it as a wildcard (at 9..14)
  -- errors=0 warnings=1 hints=0

Query files, one per line, # comments skipped — the shape the CI lint
gate feeds in:

  $ printf '# nightly checks\nSELECT r.Key FROM References r\nSELECT r FROM References r WHERE r.Title.Last_Name = "Chang"\n' > nightly.queries
  $ ../bin/oqf_cli.exe check -s bibtex --queries nightly.queries
  == nightly.queries:2: SELECT r.Key FROM References r
    ok
  == nightly.queries:3: SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  -- errors=1 warnings=1 hints=0
  [1]

With no query inputs, check lints the schema itself (OQF103:
non-natural constructs, §4):

  $ ../bin/oqf_cli.exe check -s bibtex
  == schema bibtex
    hint[OQF103] Abstract: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Abstract_value
    hint[OQF103] Title: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Title_value
    hint[OQF103] Year: pass-through wrapper rule: its database value is its single child's, so queries usually address the child -- wraps Year_value
  -- errors=0 warnings=0 hints=3

OQF102: a declared RIG that disagrees with the one rig_of_grammar
derives — every missing node/edge is an error:

  $ printf '# hand-maintained RIG, long out of date\nReference -> Key\nGhost\n' > decl.rig
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig 2>&1 | sed -n '2,3p'
    error[OQF102] declared RIG is missing a node the grammar derives -- Abstract
    error[OQF102] declared RIG is missing a node the grammar derives -- Abstract_value
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig 2>&1 | grep -c 'OQF102'
  34
  $ ../bin/oqf_cli.exe check -s bibtex --declared-rig decl.rig > /dev/null
  [1]

JSON rendering is one object per line — machine-consumable by the CI
gate:

  $ ../bin/oqf_cli.exe check -s bibtex --format json --expr 'Reference >d Name'
  [
    {"code":"OQF001","severity":"error","message":"trivially empty: the answer is the empty set on every instance satisfying the RIG (Prop 3.3)","detail":"(Reference, Name) is not a RIG edge","span":{"start":0,"stop":9}}
  ]
  [1]

The same engine gates execution: a provably-empty query is refused
before phase 1 unless forced, and --explain shows the diagnostics
alongside the plan:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"'
  oqf: static analysis found 1 error (use --force to execute anyway):
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
  [1]

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --force 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"' 2>/dev/null
  -- 0 rows (0 candidates, exact plan); scanned=0B parsed=0B index_ops=0 cmps=0 lookups=0 objs=0 regions=0

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --force --explain 'SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"' 2>/dev/null | sed -n '/^diagnostics:/,/^rewrites:/p'
  diagnostics:
    error[OQF001] r: the candidate set is provably empty: this query returns no rows on any file conforming to the schema (Prop 3.3)
    warning[OQF005] r: path r.Title.Last_Name can never match: no RIG edge from Title to Last_Name, so the query is empty on every file conforming to the schema (at 41..50)
  rewrites: (none)

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --explain 'SELECT r.Key FROM References r' 2>/dev/null | grep diagnostics
  diagnostics: (none)

Catalog audit: fresh is quiet; appended sources, orphan index files
and missing sources each get their code:

  $ ../bin/oqf_cli.exe generate -k log -n 8 --seed 5 -o app.log
  wrote 829 bytes to app.log
  $ ../bin/oqf_cli.exe catalog init cat
  initialized empty catalog in cat
  $ ../bin/oqf_cli.exe catalog add -c cat -s log app.log
  added app.log (schema log): 5 region names indexed
  $ ../bin/oqf_cli.exe catalog audit -c cat
  -- audited 1 entries: errors=0 warnings=0 hints=0

  $ printf '[2026-07-04 00:00:08] level=ERROR service=auth msg="late arrival"\n' >> app.log
  $ ../bin/oqf_cli.exe catalog audit -c cat
  warning[OQF201] app.log: stale index: the source grew append-only since the last build (refresh extends it incrementally) -- 829B -> 895B
  -- audited 1 entries: errors=0 warnings=1 hints=0

  $ : > cat/indices/ghost-full.idx
  $ ../bin/oqf_cli.exe catalog audit -c cat | grep OQF202
  warning[OQF202] indices/ghost-full.idx: orphan index file: no manifest entry references it (oqf catalog repair removes it)

  $ rm app.log
  $ ../bin/oqf_cli.exe catalog audit -c cat
  error[OQF203] app.log: orphan manifest entry: the source file is missing (oqf catalog repair drops it)
  warning[OQF202] indices/ghost-full.idx: orphan index file: no manifest entry references it (oqf catalog repair removes it)
  -- audited 1 entries: errors=1 warnings=1 hints=0
  [1]

  $ ../bin/oqf_cli.exe catalog audit -c cat --format json | head -3
  [
    {"code":"OQF203","severity":"error","subject":"app.log","message":"orphan manifest entry: the source file is missing (oqf catalog repair drops it)"},
    {"code":"OQF202","severity":"warning","subject":"indices/ghost-full.idx","message":"orphan index file: no manifest entry references it (oqf catalog repair removes it)"}

Flag validation matches the query subcommand's convention everywhere:
bad values exit 1 with a one-line message on stderr:

  $ ../bin/oqf_cli.exe check -s bibtex --format yaml
  oqf: unknown format yaml (expected text or json)
  [1]
  $ ../bin/oqf_cli.exe check -s bibtex --cost-threshold abc
  oqf: cost threshold must be a positive number (got abc)
  [1]
  $ ../bin/oqf_cli.exe catalog audit -c cat --format xml
  oqf: unknown format xml (expected text or json)
  [1]
  $ printf 'SELECT r.Key FROM References r\n' > one.queries
  $ ../bin/oqf_cli.exe batch -s bibtex --data refs.bib --jobs 0 one.queries
  oqf: jobs must be at least 1 (got 0)
  [1]
